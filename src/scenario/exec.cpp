#include "scenario/exec.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

#include "core/ess.hpp"
#include "core/evolution.hpp"
#include "core/pra.hpp"
#include "core/search.hpp"
#include "explore/explore.hpp"
#include "fault/fault_plan.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/profiler.hpp"
#include "scenario/explore_kind.hpp"
#include "stats/descriptive.hpp"
#include "swarm/swarm_sim.hpp"
#include "swarming/dsa_model.hpp"
#include "util/fingerprint.hpp"

namespace dsa::scenario {

namespace {

double parse_exact_double(const std::string& text) {
  return std::strtod(text.c_str(), nullptr);
}

// ---------------------------------------------------------------------------
// Job execution, one function per kind. Each returns its manifest rows
// (job_columns order).
// ---------------------------------------------------------------------------

swarm::ClientVariant client_from_name(const std::string& name) {
  using swarm::ClientVariant;
  if (name == "bt") return ClientVariant::kBitTorrent;
  if (name == "birds") return ClientVariant::kBirds;
  if (name == "loyal") return ClientVariant::kLoyalWhenNeeded;
  if (name == "sorts") return ClientVariant::kSortSlowest;
  if (name == "random") return ClientVariant::kRandomRank;
  throw std::logic_error("unvalidated client name: " + name);
}

swarming::SwarmingModel model_from_params(const ParamSet& params,
                                          swarming::SimEngine engine =
                                              swarming::SimEngine::kSparse,
                                          double churn = 0.0) {
  swarming::SimulationConfig sim;
  sim.rounds = static_cast<std::size_t>(params.get_int("rounds"));
  sim.engine = engine;
  sim.churn_rate = churn;
  return swarming::SwarmingModel(sim,
                                 swarming::BandwidthDistribution::piatek());
}

JobRows execute_sweep(const Job& job) {
  const ParamSet& p = job.params;
  const std::string engine_name = p.get_string("engine");
  const swarming::SimEngine engine =
      engine_name == "dense"   ? swarming::SimEngine::kDense
      : engine_name == "batch" ? swarming::SimEngine::kBatch
                               : swarming::SimEngine::kSparse;
  const swarming::SwarmingModel model =
      model_from_params(p, engine, p.get_double("churn"));
  core::PraConfig pra;
  pra.population = static_cast<std::size_t>(p.get_int("population"));
  pra.performance_runs =
      static_cast<std::size_t>(p.get_int("performance_runs"));
  pra.encounter_runs = static_cast<std::size_t>(p.get_int("encounter_runs"));
  pra.opponent_sample = static_cast<std::size_t>(p.get_int("opponent_sample"));
  pra.minority_fraction = p.get_double("minority_fraction");
  pra.seed = static_cast<std::uint64_t>(p.get_int("seed"));
  pra.batch_width = static_cast<std::size_t>(p.get_int("batch_width"));
  // Jobs already run concurrently on the runner's pool; a nested pool here
  // would deadlock it. threads=1 makes the engine's parallel_for inline on
  // this worker — and per-item seeding keeps the numbers identical to any
  // other scheduling.
  pra.threads = 1;
  const core::PraEngine pra_engine(model, pra);

  JobRows rows;
  rows.reserve(job.protocols.size());
  for (const std::uint32_t id : job.protocols) {
    const std::vector<core::ProtocolMetrics> metrics =
        pra_engine.quantify(id, id + 1);
    rows.push_back({std::to_string(id),
                    util::exact_number(metrics.front().raw_performance),
                    util::exact_number(metrics.front().robustness),
                    util::exact_number(metrics.front().aggressiveness)});
  }
  return rows;
}

JobRows execute_swarm(const Job& job) {
  const ParamSet& p = job.params;
  const std::string a_name = p.get_string("a");
  std::string b_name = p.get_string("b");
  if (b_name == "same") b_name = a_name;
  const swarm::ClientVariant a = client_from_name(a_name);
  const swarm::ClientVariant b = client_from_name(b_name);
  const auto total = static_cast<std::size_t>(p.get_int("total"));
  const double fraction = p.get_double("fraction");
  const auto runs = static_cast<std::size_t>(p.get_int("runs"));
  const auto seed = static_cast<std::uint64_t>(p.get_int("seed"));
  const double intensity = p.get_double("intensity");
  const double loss = p.get_double("loss");
  const std::int64_t timeout = p.get_int("timeout");
  const auto horizon = static_cast<std::size_t>(p.get_int("horizon"));
  const bool faulty = intensity > 0.0 || loss >= 0.0 || timeout >= 0;

  const auto count_a = std::clamp<std::size_t>(
      static_cast<std::size_t>(std::lround(fraction *
                                           static_cast<double>(total))),
      1, total - 1);

  std::vector<double> times_a, times_b, times_all;
  swarm::FaultStats totals;
  std::size_t incomplete_runs = 0;
  for (std::size_t run = 0; run < runs; ++run) {
    swarm::SwarmConfig config;
    config.piece_count = static_cast<std::size_t>(p.get_int("piece_count"));
    config.piece_size_kb = p.get_double("piece_size_kb");
    config.seeder_capacity_kbps = p.get_double("seeder_capacity");
    config.arrival_interval =
        static_cast<std::size_t>(p.get_int("arrival_interval"));
    config.seed = seed + run;
    if (faulty) {
      fault::FaultSpec spec;
      spec.intensity = intensity;
      spec.crash_fraction = p.get_double("crash_fraction");
      spec.outage_fraction = p.get_double("outage_fraction");
      spec.seed = seed + run;
      config.faults = fault::make_fault_plan(spec, total, horizon);
      if (loss >= 0.0) config.faults.message_loss = loss;
      if (timeout >= 0) {
        config.faults.piece_timeout_ticks =
            static_cast<std::size_t>(timeout);
      }
    }
    const swarm::SwarmResult result =
        swarm::run_mixed_swarm(a, b, count_a, total, config);
    const double cap = static_cast<double>(config.max_ticks);
    times_a.push_back(result.group_mean_time(0, count_a, cap));
    times_b.push_back(result.group_mean_time(count_a, total, cap));
    times_all.push_back(result.group_mean_time(0, total, cap));
    if (!result.all_completed) ++incomplete_runs;
    totals.messages_lost += result.fault_stats.messages_lost;
    totals.retries_issued += result.fault_stats.retries_issued;
    totals.crashes += result.fault_stats.crashes;
  }

  return {{a_name, b_name, std::to_string(total), std::to_string(count_a),
           util::format_number(fraction), util::format_number(intensity),
           std::to_string(seed), std::to_string(runs),
           util::format_number(stats::mean(times_a)),
           util::format_number(stats::ci95_half_width(times_a)),
           util::format_number(stats::mean(times_b)),
           util::format_number(stats::ci95_half_width(times_b)),
           util::format_number(stats::mean(times_all)),
           std::to_string(totals.messages_lost),
           std::to_string(totals.retries_issued),
           std::to_string(totals.crashes),
           std::to_string(incomplete_runs)}};
}

JobRows execute_evolution(const Job& job) {
  const ParamSet& p = job.params;
  const swarming::SwarmingModel model = model_from_params(p);
  const std::vector<std::uint32_t> menu =
      parse_protocol_menu(p.get_string("menu"));
  core::EvolutionConfig config;
  config.population = static_cast<std::size_t>(p.get_int("population"));
  config.generations = static_cast<std::size_t>(p.get_int("generations"));
  config.runs_per_generation =
      static_cast<std::size_t>(p.get_int("runs_per_generation"));
  config.mutation_rate = p.get_double("mutation");
  config.seed = static_cast<std::uint64_t>(p.get_int("seed"));
  const core::ReplicatorDynamics dynamics(model, menu, config);
  const core::EvolutionResult result = dynamics.run_from_even_split();

  std::string shares;
  for (const double share : result.final_shares()) {
    if (!shares.empty()) shares += ';';
    shares += util::format_number(share);
  }
  // CsvTable has no quoting, so the comma list becomes a ';' list.
  std::string menu_label = p.get_string("menu");
  std::replace(menu_label.begin(), menu_label.end(), ',', ';');
  const int fixated = result.fixated_menu_index;
  return {{menu_label, std::to_string(p.get_int("rounds")),
           std::to_string(config.population),
           std::to_string(config.generations),
           std::to_string(config.runs_per_generation),
           util::format_number(config.mutation_rate),
           std::to_string(config.seed), std::to_string(fixated),
           fixated >= 0
               ? std::to_string(menu[static_cast<std::size_t>(fixated)])
               : "-1",
           shares}};
}

JobRows execute_ess(const Job& job) {
  const ParamSet& p = job.params;
  const swarming::SwarmingModel model = model_from_params(p);
  const std::uint32_t protocol = parse_protocol_token(p.get_string("protocol"));
  core::EssConfig config;
  config.population = static_cast<std::size_t>(p.get_int("population"));
  config.mutant_fraction = p.get_double("mutant_fraction");
  config.runs = static_cast<std::size_t>(p.get_int("runs"));
  config.mutant_sample = static_cast<std::size_t>(p.get_int("mutant_sample"));
  config.seed = static_cast<std::uint64_t>(p.get_int("seed"));
  const core::EssQuantifier quantifier(model, config);
  const core::EssResult result = quantifier.stability_of(protocol);
  return {{p.get_string("protocol"), std::to_string(protocol),
           std::to_string(p.get_int("rounds")),
           std::to_string(config.population),
           util::format_number(config.mutant_fraction),
           std::to_string(config.runs), std::to_string(config.mutant_sample),
           std::to_string(config.seed), util::format_number(result.stability),
           std::to_string(result.invaders.size())}};
}

/// Neighbor for the search kind: re-roll one design dimension (the same
/// move set as examples/heuristic_search.cpp).
std::uint32_t mutate_protocol(std::uint32_t current, util::Rng& rng) {
  using namespace swarming;
  ProtocolSpec spec = decode_protocol(current);
  switch (rng.below(5)) {
    case 0: {
      const auto h = static_cast<std::uint8_t>(rng.below(4));
      spec.stranger_slots = h;
      spec.stranger_policy = h == 0
                                 ? StrangerPolicy::kPeriodic
                                 : static_cast<StrangerPolicy>(rng.below(3));
      break;
    }
    case 1:
      if (spec.partner_slots > 0) {
        spec.window = static_cast<CandidateWindow>(rng.below(2));
      }
      break;
    case 2:
      if (spec.partner_slots > 0) {
        spec.ranking = static_cast<RankingFunction>(rng.below(6));
      }
      break;
    case 3: {
      const auto k = static_cast<std::uint8_t>(rng.below(10));
      spec.partner_slots = k;
      if (k == 0) {
        spec.window = CandidateWindow::kTft;
        spec.ranking = RankingFunction::kFastest;
      }
      break;
    }
    default:
      spec.allocation = static_cast<AllocationPolicy>(rng.below(3));
  }
  return encode_protocol(spec);
}

JobRows execute_search(const Job& job) {
  const ParamSet& p = job.params;
  const swarming::SwarmingModel model = model_from_params(p);
  core::SearchConfig config;
  config.population = static_cast<std::size_t>(p.get_int("population"));
  config.restarts = static_cast<std::size_t>(p.get_int("restarts"));
  config.steps_per_restart =
      static_cast<std::size_t>(p.get_int("steps_per_restart"));
  config.eval_runs = static_cast<std::size_t>(p.get_int("eval_runs"));
  config.opponent_probes =
      static_cast<std::size_t>(p.get_int("opponent_probes"));
  config.performance_weight = p.get_double("performance_weight");
  config.reference_protocol = parse_protocol_token(p.get_string("reference"));
  config.seed = static_cast<std::uint64_t>(p.get_int("seed"));
  core::HeuristicSearch search(model, mutate_protocol, config);
  const core::SearchResult result = search.run();
  return {{std::to_string(p.get_int("rounds")),
           std::to_string(config.population),
           std::to_string(config.restarts),
           std::to_string(config.steps_per_restart),
           std::to_string(config.eval_runs),
           std::to_string(config.opponent_probes),
           util::format_number(config.performance_weight),
           p.get_string("reference"), std::to_string(config.seed),
           std::to_string(result.best_protocol),
           util::format_number(result.best_objective),
           std::to_string(result.evaluations)}};
}

/// Worst-value-so-far across every explore schedule this process simulated.
/// Feeds the `explore.best_value` gauge (live telemetry only — results flow
/// through the manifest rows, never through this). Process-lifetime by
/// design: a resumed search keeps ratcheting from where its own sims left
/// off.
std::atomic<double> g_explore_best{-1.0};

void note_explore_schedule(const explore::Schedule& schedule, double value) {
  if (!obs::enabled()) return;
  auto& registry = obs::Registry::global();
  registry.counter("explore.schedules_simulated").increment();
  registry.gauge("explore.frontier_depth")
      .set(static_cast<double>(schedule.size()));
  double best = g_explore_best.load(std::memory_order_relaxed);
  while (value > best && !g_explore_best.compare_exchange_weak(
                             best, value, std::memory_order_relaxed)) {
  }
  registry.gauge("explore.best_value")
      .set(g_explore_best.load(std::memory_order_relaxed));
}

/// One row per canonical schedule in the job's [begin, end) ordinal range.
/// The walk order is fixed by the domain alone, so the rows — and therefore
/// the merged CSV — are identical for any chunking, thread count, or resume
/// point.
JobRows execute_explore(const Job& job) {
  const ExploreContext ctx = explore_context(job.params);
  const std::uint64_t begin = job.protocols.at(0);
  const std::uint64_t end = job.protocols.at(1);
  const double cap = static_cast<double>(ctx.config.max_ticks);

  JobRows rows;
  explore::for_schedules_in(
      ctx.domain, begin, end,
      [&](std::uint64_t ordinal, const explore::Schedule& schedule) {
        const swarm::SwarmResult result = run_explore_schedule(ctx, schedule);
        const double value = explore_value(ctx, result);
        note_explore_schedule(schedule, value);
        std::size_t incomplete = 0;
        for (const double t : result.completion_time) {
          if (t < 0.0) ++incomplete;
        }
        rows.push_back(
            {std::to_string(ordinal), explore::describe(ctx.domain, schedule),
             std::to_string(schedule.size()),
             explore::to_string(ctx.objective), util::exact_number(value),
             util::exact_number(explore::objective_value(
                 explore::Objective::kMeanTime, result, cap)),
             util::exact_number(explore::objective_value(
                 explore::Objective::kMaxTime, result, cap)),
             std::to_string(result.fault_stats.stall_ticks),
             std::to_string(incomplete)});
      });
  return rows;
}

}  // namespace

JobRows execute_job(const ScenarioSpec& spec, const Job& job) {
  DSA_OBS_PHASE("scenario/job");
  switch (spec.kind) {
    case Kind::kSweep: return execute_sweep(job);
    case Kind::kSwarm: return execute_swarm(job);
    case Kind::kEvolution: return execute_evolution(job);
    case Kind::kEss: return execute_ess(job);
    case Kind::kSearch: return execute_search(job);
    case Kind::kExplore: return execute_explore(job);
  }
  throw std::logic_error("unknown scenario kind");
}

util::CsvTable merge_rows(const Plan& plan,
                          const std::vector<JobRows>& results) {
  util::CsvTable table(plan.merged_columns);
  if (plan.spec.kind == Kind::kSweep) {
    // Reproduce compute_pra_dataset + save_pra_dataset exactly: collect the
    // exact raw metrics, normalize performance against the global best, and
    // format with the dataset's display precision. exact_number strings
    // round-trip, so raw/best here is bit-for-bit the uninterrupted sweep's
    // quotient.
    struct Rec {
      std::uint32_t protocol;
      double raw, robustness, aggressiveness;
    };
    std::vector<Rec> records;
    for (const JobRows& rows : results) {
      for (const std::vector<std::string>& row : rows) {
        records.push_back({static_cast<std::uint32_t>(
                               std::strtoul(row[0].c_str(), nullptr, 10)),
                           parse_exact_double(row[1]),
                           parse_exact_double(row[2]),
                           parse_exact_double(row[3])});
      }
    }
    double best = 0.0;
    for (const Rec& rec : records) best = std::max(best, rec.raw);
    for (const Rec& rec : records) {
      const swarming::ProtocolSpec spec =
          swarming::decode_protocol(rec.protocol);
      table.add_row({
          std::to_string(rec.protocol),
          swarming::to_string(spec.stranger_policy),
          std::to_string(spec.stranger_slots),
          swarming::to_string(spec.window),
          swarming::to_string(spec.ranking),
          std::to_string(spec.partner_slots),
          swarming::to_string(spec.allocation),
          util::format_number(rec.raw),
          util::format_number(best > 0.0 ? rec.raw / best : 0.0),
          util::format_number(rec.robustness),
          util::format_number(rec.aggressiveness),
      });
    }
  } else {
    for (const JobRows& rows : results) {
      for (const std::vector<std::string>& row : rows) {
        table.add_row(row);
      }
    }
  }
  return table;
}

}  // namespace dsa::scenario
