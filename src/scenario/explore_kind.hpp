// Bridge between explore-kind scenario specs and the explore library: turns
// a validated ParamSet into the fault Domain + pinned swarm experiment the
// exploration runs, and evaluates one schedule into the spec's objective.
// Lives in the scenario layer (not src/explore) because only this layer
// knows about ParamSets; dsa_explore stays a pure search library.
#pragma once

#include <cstdint>
#include <string>

#include "explore/explore.hpp"
#include "scenario/spec.hpp"
#include "swarm/swarm_sim.hpp"

namespace dsa::scenario {

/// Everything one explore job needs: the schedule space, the pinned swarm
/// run every schedule is injected into, and the ranking objective.
struct ExploreContext {
  explore::Domain domain;
  /// Swarm knobs with `faults` left empty — run_explore_schedule fills it
  /// per schedule. The seed is pinned: every schedule perturbs the *same*
  /// run, so objective differences are attributable to the faults alone.
  swarm::SwarmConfig config;
  swarm::ClientVariant a;
  swarm::ClientVariant b;
  std::string a_name;
  std::string b_name;  ///< resolved ("same" replaced by a_name)
  std::size_t count_a = 0;
  std::size_t total = 0;
  explore::Objective objective = explore::Objective::kMeanTime;
  double loss = 0.0;           ///< ambient message loss on every plan
  std::size_t timeout = 0;     ///< ambient piece timeout on every plan
};

/// Builds the context from a validated explore-kind ParamSet. Throws
/// std::invalid_argument on cross-field violations the per-param checks
/// cannot see: crash targets beyond the swarm size, a start-tick grid
/// reaching the horizon, an empty template vocabulary, or a schedule space
/// above Domain::kMaxSpace.
[[nodiscard]] ExploreContext explore_context(const ParamSet& params);

/// Runs the pinned swarm under one schedule's materialized FaultPlan.
[[nodiscard]] swarm::SwarmResult run_explore_schedule(
    const ExploreContext& ctx, const explore::Schedule& schedule);

/// The spec's objective value for one run (cap = the run's max_ticks).
[[nodiscard]] double explore_value(const ExploreContext& ctx,
                                   const swarm::SwarmResult& result);

}  // namespace dsa::scenario
