#include "scenario/plan.hpp"

#include <algorithm>

#include "scenario/explore_kind.hpp"
#include "util/fingerprint.hpp"

namespace dsa::scenario {

namespace {

std::string value_to_string(const ParamValue& value) {
  if (const auto* i = std::get_if<std::int64_t>(&value)) {
    return std::to_string(*i);
  }
  if (const auto* d = std::get_if<double>(&value)) {
    return util::exact_number(*d);
  }
  return std::get<std::string>(value);
}

void mix_value(util::Fingerprint& fp, const ParamValue& value) {
  fp.mix(static_cast<std::uint64_t>(value.index()));
  if (const auto* i = std::get_if<std::int64_t>(&value)) {
    fp.mix(static_cast<std::uint64_t>(*i));
  } else if (const auto* d = std::get_if<double>(&value)) {
    fp.mix_double(*d);
  } else {
    fp.mix(std::get<std::string>(value));
  }
}

std::vector<std::string> job_columns_for(Kind kind) {
  switch (kind) {
    case Kind::kSweep:
      return {"protocol", "raw_performance", "robustness", "aggressiveness"};
    case Kind::kSwarm:
      return {"a", "b", "total", "count_a", "fraction", "intensity", "seed",
              "runs", "mean_time_a_s", "ci95_a_s", "mean_time_b_s",
              "ci95_b_s", "mean_time_all_s", "messages_lost",
              "retries_issued", "crashes", "incomplete_runs"};
    case Kind::kEvolution:
      return {"menu", "rounds", "population", "generations",
              "runs_per_generation", "mutation", "seed", "fixated_index",
              "fixated_protocol", "final_shares"};
    case Kind::kEss:
      return {"protocol", "protocol_id", "rounds", "population",
              "mutant_fraction", "runs", "mutant_sample", "seed",
              "stability", "invaders"};
    case Kind::kSearch:
      return {"rounds", "population", "restarts", "steps_per_restart",
              "eval_runs", "opponent_probes", "performance_weight",
              "reference", "seed", "best_protocol", "best_objective",
              "evaluations"};
    case Kind::kExplore:
      // One row per canonical schedule; "schedule" is explore::describe()
      // (';'-joined — CsvTable has no quoting).
      return {"ordinal", "schedule", "depth", "objective", "value",
              "mean_time_s", "max_time_s", "stall_ticks", "incomplete"};
  }
  return {};
}

std::vector<std::string> merged_columns_for(Kind kind) {
  if (kind == Kind::kSweep) {
    // The canonical PRA dataset schema of save_pra_dataset — the merge
    // reproduces it byte-for-byte.
    return {"protocol", "stranger_policy", "h", "window", "ranking", "k",
            "allocation", "raw_performance", "performance", "robustness",
            "aggressiveness"};
  }
  return job_columns_for(kind);
}

void expand_grid_jobs(const ScenarioSpec& spec, std::uint64_t spec_fp,
                      Plan& plan) {
  std::size_t total = 1;
  for (const Axis& axis : spec.axes) total *= axis.values.size();

  // Odometer over the axes, last axis fastest — spec order is table order,
  // so job order never depends on the spec author's key order.
  std::vector<std::size_t> digits(spec.axes.size(), 0);
  for (std::size_t index = 0; index < total; ++index) {
    Job job;
    job.index = index;
    util::Fingerprint fp(spec_fp ^ 0x9bd1f30a7c24e685ULL);
    std::string label;
    for (std::size_t a = 0; a < spec.axes.size(); ++a) {
      const Axis& axis = spec.axes[a];
      const ParamValue& value = axis.values[digits[a]];
      job.params.set(axis.name, value);
      fp.mix(axis.name);
      mix_value(fp, value);
      if (axis.is_grid()) {
        if (!label.empty()) label += ' ';
        label += axis.name + '=' + value_to_string(value);
      }
    }
    job.fingerprint = fp.value();
    job.label = label.empty() ? "job " + std::to_string(index) : label;
    plan.jobs.push_back(std::move(job));
    for (std::size_t a = spec.axes.size(); a-- > 0;) {
      if (++digits[a] < spec.axes[a].values.size()) break;
      digits[a] = 0;
    }
  }
}

void expand_sweep_jobs(const ScenarioSpec& spec, std::uint64_t spec_fp,
                       Plan& plan) {
  ParamSet params;
  for (const Axis& axis : spec.axes) {
    params.set(axis.name, axis.values.front());
  }
  const std::vector<std::uint32_t> selection =
      parse_protocol_selection(params.get_string("protocols"));

  for (std::size_t begin = 0; begin < selection.size();
       begin += spec.chunk) {
    const std::size_t end =
        std::min(begin + spec.chunk, selection.size());
    Job job;
    job.index = plan.jobs.size();
    job.params = params;
    job.protocols.assign(selection.begin() + static_cast<std::ptrdiff_t>(begin),
                         selection.begin() + static_cast<std::ptrdiff_t>(end));
    util::Fingerprint fp(spec_fp ^ 0x9bd1f30a7c24e685ULL);
    for (const Axis& axis : spec.axes) {
      fp.mix(axis.name);
      mix_value(fp, axis.values.front());
    }
    fp.mix(static_cast<std::uint64_t>(job.protocols.size()));
    for (std::uint32_t id : job.protocols) {
      fp.mix(static_cast<std::uint64_t>(id));
    }
    job.fingerprint = fp.value();
    job.label = "protocols " + std::to_string(job.protocols.front()) + ".." +
                std::to_string(job.protocols.back());
    plan.jobs.push_back(std::move(job));
  }
}

/// Shards the schedule space into [begin, end) ordinal chunks. The domain
/// is rebuilt (and cross-validated) here so `dsa_cli plan` rejects a bad
/// explore spec before any job runs.
void expand_explore_jobs(const ScenarioSpec& spec, std::uint64_t spec_fp,
                         Plan& plan) {
  ParamSet params;
  for (const Axis& axis : spec.axes) {
    params.set(axis.name, axis.values.front());
  }
  const ExploreContext ctx = explore_context(params);
  const std::uint64_t space = explore::count_space(ctx.domain);

  for (std::uint64_t begin = 0; begin < space; begin += spec.chunk) {
    const std::uint64_t end =
        std::min<std::uint64_t>(begin + spec.chunk, space);
    Job job;
    job.index = plan.jobs.size();
    job.params = params;
    job.protocols = {static_cast<std::uint32_t>(begin),
                     static_cast<std::uint32_t>(end)};
    util::Fingerprint fp(spec_fp ^ 0x9bd1f30a7c24e685ULL);
    for (const Axis& axis : spec.axes) {
      fp.mix(axis.name);
      mix_value(fp, axis.values.front());
    }
    fp.mix(begin);
    fp.mix(end);
    job.fingerprint = fp.value();
    job.label = "schedules " + std::to_string(begin) + ".." +
                std::to_string(end - 1);
    plan.jobs.push_back(std::move(job));
  }
}

}  // namespace

Plan expand_plan(const ScenarioSpec& spec) {
  Plan plan;
  plan.spec = spec;
  plan.spec_fingerprint = spec.fingerprint();
  plan.job_columns = job_columns_for(spec.kind);
  plan.merged_columns = merged_columns_for(spec.kind);
  if (spec.kind == Kind::kSweep) {
    expand_sweep_jobs(spec, plan.spec_fingerprint, plan);
  } else if (spec.kind == Kind::kExplore) {
    expand_explore_jobs(spec, plan.spec_fingerprint, plan);
  } else {
    expand_grid_jobs(spec, plan.spec_fingerprint, plan);
  }
  return plan;
}

}  // namespace dsa::scenario
