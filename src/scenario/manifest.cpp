#include "scenario/manifest.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/recorder.hpp"
#include "util/fingerprint.hpp"

namespace dsa::scenario {

namespace json = util::json;

std::string hex16(std::uint64_t value) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(value));
  return std::string(buffer, 16);
}

const char* to_string(ManifestTrust trust) {
  switch (trust) {
    case ManifestTrust::kTrusted: return "trusted";
    case ManifestTrust::kMissing: return "missing";
    case ManifestTrust::kForeignHeader: return "foreign-header";
    case ManifestTrust::kBadJobLine: return "bad-job-line";
    case ManifestTrust::kTornTail: return "torn-tail";
  }
  return "unknown";
}

std::string manifest_header_line(const Plan& plan) {
  std::string line = "{\"scenario\":\"" + json::escape(plan.spec.name) +
                     "\",\"kind\":\"" + to_string(plan.spec.kind) +
                     "\",\"spec_fp\":\"" + hex16(plan.spec_fingerprint) +
                     "\",\"jobs\":" + std::to_string(plan.jobs.size()) +
                     ",\"columns\":[";
  for (std::size_t i = 0; i < plan.job_columns.size(); ++i) {
    if (i > 0) line += ',';
    line += '"' + json::escape(plan.job_columns[i]) + '"';
  }
  line += "]";
  // Provenance only: the flight-recorder settings active while the jobs
  // ran. header_matches() ignores it, so a resume with different recording
  // settings still reuses finished jobs (recording never changes results).
  const obs::Recorder& recorder = obs::Recorder::global();
  line += std::string(",\"record\":{\"level\":\"") +
          obs::to_string(recorder.level()) +
          "\",\"stride\":" + std::to_string(recorder.stride()) + "}";
  line += "}";
  return line;
}

std::string manifest_job_line(const Job& job, const JobRows& rows,
                              double wall_ms) {
  std::string line = "{\"job\":" + std::to_string(job.index) + ",\"fp\":\"" +
                     hex16(job.fingerprint) + "\",\"ms\":" +
                     util::exact_number(wall_ms) + ",\"rows\":[";
  for (std::size_t r = 0; r < rows.size(); ++r) {
    if (r > 0) line += ',';
    line += '[';
    for (std::size_t c = 0; c < rows[r].size(); ++c) {
      if (c > 0) line += ',';
      line += '"' + json::escape(rows[r][c]) + '"';
    }
    line += ']';
  }
  line += "]}";
  return line;
}

std::optional<ParsedJobLine> parse_job_line(const json::Value& value) {
  if (value.type != json::Value::Type::kObject) return std::nullopt;
  const json::Value* index = value.find("job");
  if (index == nullptr || index->type != json::Value::Type::kNumber) {
    return std::nullopt;
  }
  const double raw_index = index->number;
  if (raw_index < 0 || std::floor(raw_index) != raw_index) return std::nullopt;
  const json::Value* fp = value.find("fp");
  if (fp == nullptr || fp->type != json::Value::Type::kString) {
    return std::nullopt;
  }
  const json::Value* rows = value.find("rows");
  if (rows == nullptr || rows->type != json::Value::Type::kArray) {
    return std::nullopt;
  }
  ParsedJobLine parsed;
  parsed.index = static_cast<std::size_t>(raw_index);
  parsed.fp_hex = fp->text;
  parsed.rows.reserve(rows->items.size());
  for (const json::Value& row : rows->items) {
    if (row.type != json::Value::Type::kArray) return std::nullopt;
    std::vector<std::string> cells;
    cells.reserve(row.items.size());
    for (const json::Value& cell : row.items) {
      if (cell.type != json::Value::Type::kString) return std::nullopt;
      cells.push_back(cell.text);
    }
    parsed.rows.push_back(std::move(cells));
  }
  // Optional wall time (absent in pre-latency manifests; those resume fine).
  if (const json::Value* ms = value.find("ms");
      ms != nullptr && ms->type == json::Value::Type::kNumber &&
      ms->number >= 0.0) {
    parsed.ms = ms->number;
  }
  return parsed;
}

namespace {

bool header_matches(const json::Value& value, const Plan& plan) {
  if (value.type != json::Value::Type::kObject) return false;
  const json::Value* fp = value.find("spec_fp");
  if (fp == nullptr || fp->type != json::Value::Type::kString ||
      fp->text != hex16(plan.spec_fingerprint)) {
    return false;
  }
  const json::Value* jobs = value.find("jobs");
  if (jobs == nullptr || jobs->type != json::Value::Type::kNumber ||
      jobs->number != static_cast<double>(plan.jobs.size())) {
    return false;
  }
  const json::Value* columns = value.find("columns");
  if (columns == nullptr || columns->type != json::Value::Type::kArray ||
      columns->items.size() != plan.job_columns.size()) {
    return false;
  }
  for (std::size_t i = 0; i < plan.job_columns.size(); ++i) {
    if (columns->items[i].type != json::Value::Type::kString ||
        columns->items[i].text != plan.job_columns[i]) {
      return false;
    }
  }
  return true;
}

/// Validates one job line against the plan; on success stores its rows and
/// returns empty, otherwise returns the reason it was rejected.
std::string accept_job_line(const json::Value& value, const Plan& plan,
                            ManifestData& data) {
  const std::optional<ParsedJobLine> parsed = parse_job_line(value);
  if (!parsed) return "not a well-formed job line";
  if (parsed->index >= plan.jobs.size()) {
    return "job index " + std::to_string(parsed->index) +
           " out of range (plan has " + std::to_string(plan.jobs.size()) +
           " jobs)";
  }
  if (data.have[parsed->index]) {
    // Duplicates are not trusted.
    return "duplicate entry for job " + std::to_string(parsed->index);
  }
  if (parsed->fp_hex != hex16(plan.jobs[parsed->index].fingerprint)) {
    return "fingerprint mismatch for job " + std::to_string(parsed->index) +
           " (manifest " + parsed->fp_hex + ", plan " +
           hex16(plan.jobs[parsed->index].fingerprint) + ")";
  }
  for (const std::vector<std::string>& row : parsed->rows) {
    if (row.size() != plan.job_columns.size()) {
      return "job " + std::to_string(parsed->index) + " row width " +
             std::to_string(row.size()) + " != " +
             std::to_string(plan.job_columns.size()) + " columns";
    }
  }
  data.have[parsed->index] = true;
  data.rows[parsed->index] = std::move(parsed->rows);
  data.ms[parsed->index] = parsed->ms;
  return {};
}

}  // namespace

ManifestData load_manifest(const Plan& plan,
                           const std::filesystem::path& path) {
  ManifestData data;
  data.have.assign(plan.jobs.size(), false);
  data.rows.resize(plan.jobs.size());
  data.ms.assign(plan.jobs.size(), -1.0);
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    data.trust = ManifestTrust::kMissing;
    data.distrust_reason = "no manifest at " + path.string();
    return data;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string contents = buffer.str();

  data.trust = ManifestTrust::kTrusted;
  std::size_t pos = 0;
  std::size_t line_number = 0;
  bool first = true;
  while (pos < contents.size()) {
    const std::size_t newline = contents.find('\n', pos);
    if (newline == std::string::npos) {
      // Torn tail from a kill mid-write — untrusted, truncated by the
      // caller before appending.
      data.trust = ManifestTrust::kTornTail;
      data.distrust_reason = std::to_string(contents.size() - pos) +
                             " trailing byte(s) without a newline after line " +
                             std::to_string(line_number);
      break;
    }
    ++line_number;
    const std::string line = contents.substr(pos, newline - pos);
    json::Value value;
    try {
      value = json::parse(line, "<manifest>");
    } catch (const std::exception& error) {
      data.trust = first ? ManifestTrust::kForeignHeader
                         : ManifestTrust::kBadJobLine;
      data.distrust_reason = "line " + std::to_string(line_number) +
                             " is not valid JSON: " + error.what();
      break;
    }
    if (first) {
      if (!header_matches(value, plan)) {
        data.trust = ManifestTrust::kForeignHeader;
        data.distrust_reason =
            "header does not match the plan (expected spec_fp " +
            hex16(plan.spec_fingerprint) + ", " +
            std::to_string(plan.jobs.size()) + " jobs)";
        break;
      }
      data.header_ok = true;
      first = false;
    } else if (std::string reason = accept_job_line(value, plan, data);
               !reason.empty()) {
      data.trust = ManifestTrust::kBadJobLine;
      data.distrust_reason =
          "line " + std::to_string(line_number) + ": " + reason;
      break;
    }
    pos = newline + 1;
    data.valid_bytes = pos;
  }
  if (first && data.trust == ManifestTrust::kTrusted) {
    // Zero complete lines (empty file): nothing to verify a header against.
    data.trust = ManifestTrust::kForeignHeader;
    data.distrust_reason = "manifest has no header line";
  }
  if (!data.header_ok) {
    // Foreign or corrupt manifest: trust nothing.
    data.valid_bytes = 0;
    data.have.assign(plan.jobs.size(), false);
    for (JobRows& rows : data.rows) rows.clear();
    data.ms.assign(plan.jobs.size(), -1.0);
  }
  return data;
}

}  // namespace dsa::scenario
