#include "scenario/spec.hpp"

#include <sstream>
#include <stdexcept>

#include "explore/explore.hpp"
#include "swarming/protocol.hpp"
#include "util/fingerprint.hpp"
#include "util/json.hpp"

namespace dsa::scenario {

namespace json = util::json;

std::string to_string(Kind kind) {
  switch (kind) {
    case Kind::kSweep: return "sweep";
    case Kind::kSwarm: return "swarm";
    case Kind::kEvolution: return "evolution";
    case Kind::kEss: return "ess";
    case Kind::kSearch: return "search";
    case Kind::kExplore: return "explore";
  }
  return "unknown";
}

void ParamSet::set(std::string name, ParamValue value) {
  entries_.emplace_back(std::move(name), std::move(value));
}

const ParamValue& ParamSet::find(const std::string& name) const {
  for (const auto& [key, value] : entries_) {
    if (key == name) return value;
  }
  throw std::logic_error("scenario parameter not set: " + name);
}

std::int64_t ParamSet::get_int(const std::string& name) const {
  const ParamValue& v = find(name);
  if (const auto* i = std::get_if<std::int64_t>(&v)) return *i;
  throw std::logic_error("scenario parameter is not an int: " + name);
}

double ParamSet::get_double(const std::string& name) const {
  const ParamValue& v = find(name);
  if (const auto* d = std::get_if<double>(&v)) return *d;
  // An int where a double is expected never happens for validated params
  // (the parser stores doubles for double-typed defs), so no coercion.
  throw std::logic_error("scenario parameter is not a double: " + name);
}

const std::string& ParamSet::get_string(const std::string& name) const {
  const ParamValue& v = find(name);
  if (const auto* s = std::get_if<std::string>(&v)) return *s;
  throw std::logic_error("scenario parameter is not a string: " + name);
}

std::uint32_t parse_protocol_token(const std::string& token) {
  using namespace swarming;
  if (token == "bt") return encode_protocol(bittorrent_protocol());
  if (token == "birds") return encode_protocol(birds_protocol());
  if (token == "loyal") return encode_protocol(loyal_when_needed_protocol());
  if (token == "sorts") return encode_protocol(sort_s_protocol());
  if (token == "random") return encode_protocol(random_rank_protocol());
  try {
    std::size_t pos = 0;
    const unsigned long id = std::stoul(token, &pos);
    if (pos != token.size() || id >= kProtocolCount) {
      throw std::out_of_range("id");
    }
    return static_cast<std::uint32_t>(id);
  } catch (const std::exception&) {
    throw std::invalid_argument(
        "unknown protocol '" + token +
        "' (named: bt, birds, loyal, sorts, random; or an id in [0, " +
        std::to_string(swarming::kProtocolCount) + "))");
  }
}

std::vector<std::uint32_t> parse_protocol_selection(const std::string& text) {
  std::vector<std::uint32_t> ids;
  if (text == "all") {
    ids.reserve(swarming::kProtocolCount);
    for (std::uint32_t id = 0; id < swarming::kProtocolCount; ++id) {
      ids.push_back(id);
    }
    return ids;
  }
  if (text.rfind("stride:", 0) == 0) {
    const std::string arg = text.substr(7);
    unsigned long stride = 0;
    try {
      std::size_t pos = 0;
      stride = std::stoul(arg, &pos);
      if (pos != arg.size() || stride == 0) throw std::invalid_argument(arg);
    } catch (const std::exception&) {
      throw std::invalid_argument("bad protocol stride '" + text +
                                  "' (want stride:N with N >= 1)");
    }
    for (std::uint32_t id = 0; id < swarming::kProtocolCount;
         id += static_cast<std::uint32_t>(stride)) {
      ids.push_back(id);
    }
    return ids;
  }
  std::stringstream stream(text);
  std::string token;
  while (std::getline(stream, token, ',')) {
    if (!token.empty()) ids.push_back(parse_protocol_token(token));
  }
  if (ids.empty()) {
    throw std::invalid_argument("empty protocol selection '" + text + "'");
  }
  return ids;
}

std::vector<std::uint32_t> parse_protocol_menu(const std::string& text) {
  std::vector<std::uint32_t> menu;
  std::stringstream stream(text);
  std::string token;
  while (std::getline(stream, token, ',')) {
    if (!token.empty()) menu.push_back(parse_protocol_token(token));
  }
  if (menu.size() < 2) {
    throw std::invalid_argument("menu '" + text +
                                "' needs at least two protocols");
  }
  return menu;
}

namespace {

enum class ParamType : std::uint8_t { kInt, kDouble, kString };

/// Extra validation applied to each value of an axis beyond its type.
enum class ParamCheck : std::uint8_t {
  kNone,
  kProtocol,           // parse_protocol_token must accept it
  kProtocolSelection,  // parse_protocol_selection must accept it
  kProtocolMenu,       // parse_protocol_menu must accept it
  kClient,             // one of the five swarm client names
  kClientOrSame,       // a client name or "same" (mirror param a)
  kEngine,             // "sparse" | "dense" | "batch"
  kBatchWidth,         // int in [1, 64]
  kOpenUnitInterval,   // double in (0, 1)
  kUnitInterval,       // double in [0, 1]
  kNonNegative,        // number >= 0
  kPositive,           // number >= 1 (ints) / > 0 (doubles)
  kWeight,             // double in [0, 1]
  kObjective,          // explore::parse_objective must accept it
};

struct ParamDef {
  const char* name;
  ParamType type;
  ParamValue fallback;
  ParamCheck check = ParamCheck::kNone;
};

bool is_client_name(const std::string& name) {
  return name == "bt" || name == "birds" || name == "loyal" ||
         name == "sorts" || name == "random";
}

const std::vector<ParamDef>& params_for(Kind kind) {
  using PT = ParamType;
  using PC = ParamCheck;
  static const std::vector<ParamDef> sweep = {
      {"protocols", PT::kString, std::string("all"), PC::kProtocolSelection},
      {"rounds", PT::kInt, std::int64_t{120}, PC::kPositive},
      {"population", PT::kInt, std::int64_t{50}, PC::kPositive},
      {"performance_runs", PT::kInt, std::int64_t{3}, PC::kPositive},
      {"encounter_runs", PT::kInt, std::int64_t{1}, PC::kPositive},
      {"opponent_sample", PT::kInt, std::int64_t{24}, PC::kNonNegative},
      {"minority_fraction", PT::kDouble, 0.1, PC::kOpenUnitInterval},
      {"seed", PT::kInt, std::int64_t{2011}, PC::kNonNegative},
      {"engine", PT::kString, std::string("sparse"), PC::kEngine},
      {"batch_width", PT::kInt, std::int64_t{1}, PC::kBatchWidth},
      {"churn", PT::kDouble, 0.0, PC::kUnitInterval},
  };
  static const std::vector<ParamDef> swarm = {
      {"a", PT::kString, std::string("bt"), PC::kClient},
      {"b", PT::kString, std::string("bt"), PC::kClientOrSame},
      {"fraction", PT::kDouble, 0.5, PC::kOpenUnitInterval},
      {"total", PT::kInt, std::int64_t{50}, PC::kPositive},
      {"runs", PT::kInt, std::int64_t{10}, PC::kPositive},
      {"seed", PT::kInt, std::int64_t{500}, PC::kNonNegative},
      {"intensity", PT::kDouble, 0.0, PC::kUnitInterval},
      {"loss", PT::kDouble, -1.0},   // < 0 = no override
      {"timeout", PT::kInt, std::int64_t{-1}},  // < 0 = no override
      {"crash_fraction", PT::kDouble, 0.5, PC::kUnitInterval},
      {"outage_fraction", PT::kDouble, 0.25, PC::kUnitInterval},
      {"horizon", PT::kInt, std::int64_t{600}, PC::kPositive},
      {"piece_count", PT::kInt, std::int64_t{80}, PC::kPositive},
      {"piece_size_kb", PT::kDouble, 64.0, PC::kPositive},
      {"seeder_capacity", PT::kDouble, 128.0, PC::kPositive},
      {"arrival_interval", PT::kInt, std::int64_t{0}, PC::kNonNegative},
  };
  static const std::vector<ParamDef> evolution = {
      {"menu", PT::kString, std::string("bt,birds,loyal"), PC::kProtocolMenu},
      {"rounds", PT::kInt, std::int64_t{200}, PC::kPositive},
      {"population", PT::kInt, std::int64_t{50}, PC::kPositive},
      {"generations", PT::kInt, std::int64_t{40}, PC::kPositive},
      {"runs_per_generation", PT::kInt, std::int64_t{2}, PC::kPositive},
      {"mutation", PT::kDouble, 0.0, PC::kUnitInterval},
      {"seed", PT::kInt, std::int64_t{2011}, PC::kNonNegative},
  };
  static const std::vector<ParamDef> ess = {
      {"protocol", PT::kString, std::string("bt"), PC::kProtocol},
      {"rounds", PT::kInt, std::int64_t{200}, PC::kPositive},
      {"population", PT::kInt, std::int64_t{50}, PC::kPositive},
      {"mutant_fraction", PT::kDouble, 0.1, PC::kOpenUnitInterval},
      {"runs", PT::kInt, std::int64_t{1}, PC::kPositive},
      {"mutant_sample", PT::kInt, std::int64_t{24}, PC::kNonNegative},
      {"seed", PT::kInt, std::int64_t{2011}, PC::kNonNegative},
  };
  static const std::vector<ParamDef> search = {
      {"rounds", PT::kInt, std::int64_t{120}, PC::kPositive},
      {"population", PT::kInt, std::int64_t{50}, PC::kPositive},
      {"restarts", PT::kInt, std::int64_t{4}, PC::kPositive},
      {"steps_per_restart", PT::kInt, std::int64_t{40}, PC::kPositive},
      {"eval_runs", PT::kInt, std::int64_t{3}, PC::kPositive},
      {"opponent_probes", PT::kInt, std::int64_t{8}, PC::kPositive},
      {"performance_weight", PT::kDouble, 0.5, PC::kWeight},
      {"reference", PT::kString, std::string("bt"), PC::kProtocol},
      {"seed", PT::kInt, std::int64_t{7}, PC::kNonNegative},
  };
  static const std::vector<ParamDef> explore = {
      {"a", PT::kString, std::string("bt"), PC::kClient},
      {"b", PT::kString, std::string("same"), PC::kClientOrSame},
      {"fraction", PT::kDouble, 0.5, PC::kOpenUnitInterval},
      {"total", PT::kInt, std::int64_t{20}, PC::kPositive},
      {"seed", PT::kInt, std::int64_t{500}, PC::kNonNegative},
      {"piece_count", PT::kInt, std::int64_t{40}, PC::kPositive},
      {"piece_size_kb", PT::kDouble, 64.0, PC::kPositive},
      {"seeder_capacity", PT::kDouble, 128.0, PC::kPositive},
      {"max_ticks", PT::kInt, std::int64_t{20000}, PC::kPositive},
      // Ambient fault knobs applied to every schedule of the exploration.
      {"loss", PT::kDouble, 0.0, PC::kUnitInterval},
      {"timeout", PT::kInt, std::int64_t{0}, PC::kNonNegative},
      // Template vocabulary: crash templates for the first `crash_leechers`
      // leechers, `outage_count` seeder-outage templates.
      {"crash_leechers", PT::kInt, std::int64_t{2}, PC::kNonNegative},
      {"crash_downtime", PT::kInt, std::int64_t{60}, PC::kPositive},
      {"outage_count", PT::kInt, std::int64_t{1}, PC::kNonNegative},
      {"outage_length", PT::kInt, std::int64_t{80}, PC::kPositive},
      // Start-tick grid: tick_start, tick_start + tick_step, ...
      {"tick_start", PT::kInt, std::int64_t{1}, PC::kNonNegative},
      {"tick_step", PT::kInt, std::int64_t{40}, PC::kPositive},
      {"tick_count", PT::kInt, std::int64_t{6}, PC::kPositive},
      {"max_faults", PT::kInt, std::int64_t{2}, PC::kNonNegative},
      {"objective", PT::kString, std::string("mean_time"), PC::kObjective},
  };
  switch (kind) {
    case Kind::kSweep: return sweep;
    case Kind::kSwarm: return swarm;
    case Kind::kEvolution: return evolution;
    case Kind::kEss: return ess;
    case Kind::kSearch: return search;
    case Kind::kExplore: return explore;
  }
  return sweep;
}

void check_value(const ParamDef& def, const ParamValue& value,
                 const json::Cursor& where) {
  const auto number = [&]() -> double {
    if (const auto* i = std::get_if<std::int64_t>(&value)) {
      return static_cast<double>(*i);
    }
    return std::get<double>(value);
  };
  const auto text = [&]() -> const std::string& {
    return std::get<std::string>(value);
  };
  try {
    switch (def.check) {
      case ParamCheck::kNone:
        break;
      case ParamCheck::kProtocol:
        (void)parse_protocol_token(text());
        break;
      case ParamCheck::kProtocolSelection:
        (void)parse_protocol_selection(text());
        break;
      case ParamCheck::kProtocolMenu:
        (void)parse_protocol_menu(text());
        break;
      case ParamCheck::kClient:
        if (!is_client_name(text())) {
          throw std::invalid_argument(
              "unknown client '" + text() +
              "' (want bt, birds, loyal, sorts, or random)");
        }
        break;
      case ParamCheck::kClientOrSame:
        if (text() != "same" && !is_client_name(text())) {
          throw std::invalid_argument(
              "unknown client '" + text() +
              "' (want bt, birds, loyal, sorts, random, or same)");
        }
        break;
      case ParamCheck::kEngine:
        if (text() != "sparse" && text() != "dense" && text() != "batch") {
          throw std::invalid_argument("unknown engine '" + text() +
                                      "' (want sparse, dense, or batch)");
        }
        break;
      case ParamCheck::kBatchWidth:
        if (!(number() >= 1.0 && number() <= 64.0)) {
          throw std::invalid_argument("batch_width must be in [1, 64]");
        }
        break;
      case ParamCheck::kOpenUnitInterval:
        if (!(number() > 0.0 && number() < 1.0)) {
          throw std::invalid_argument("value must be inside (0, 1)");
        }
        break;
      case ParamCheck::kUnitInterval:
      case ParamCheck::kWeight:
        if (!(number() >= 0.0 && number() <= 1.0)) {
          throw std::invalid_argument("value must be inside [0, 1]");
        }
        break;
      case ParamCheck::kNonNegative:
        if (number() < 0.0) {
          throw std::invalid_argument("value must be >= 0");
        }
        break;
      case ParamCheck::kPositive:
        if (!(number() > 0.0)) {
          throw std::invalid_argument("value must be > 0");
        }
        break;
      case ParamCheck::kObjective:
        (void)explore::parse_objective(text());
        break;
    }
  } catch (const std::invalid_argument& error) {
    where.fail(error.what());
  }
}

ParamValue read_value(const ParamDef& def, const json::Cursor& where) {
  ParamValue value;
  switch (def.type) {
    case ParamType::kInt: value = where.as_int(); break;
    case ParamType::kDouble: value = where.as_double(); break;
    case ParamType::kString: value = where.as_string(); break;
  }
  check_value(def, value, where);
  return value;
}

Kind parse_kind(const json::Cursor& where) {
  const std::string text = where.as_string();
  if (text == "sweep") return Kind::kSweep;
  if (text == "swarm") return Kind::kSwarm;
  if (text == "evolution") return Kind::kEvolution;
  if (text == "ess") return Kind::kEss;
  if (text == "search") return Kind::kSearch;
  if (text == "explore") return Kind::kExplore;
  where.fail("unknown kind '" + text +
             "' (want sweep, swarm, evolution, ess, search, or explore)");
}

ScenarioSpec build_spec(const json::Value& root, std::string origin) {
  const json::Cursor top(root, std::move(origin));
  top.allow_only(
      {"scenario", "kind", "output", "threads", "retries", "chunk", "params"});

  ScenarioSpec spec;
  spec.name = top.key("scenario").as_string();
  if (spec.name.empty()) top.key("scenario").fail("scenario name is empty");
  spec.kind = parse_kind(top.key("kind"));
  spec.output = top.key("output").as_string();
  if (spec.output.empty()) top.key("output").fail("output path is empty");

  if (const auto threads = top.try_key("threads")) {
    const std::int64_t n = threads->as_int();
    if (n < 0) threads->fail("threads must be >= 0 (0 = hardware)");
    spec.threads = static_cast<std::size_t>(n);
  }
  if (const auto retries = top.try_key("retries")) {
    const std::int64_t n = retries->as_int();
    if (n < 0) retries->fail("retries must be >= 0");
    spec.retries = static_cast<std::size_t>(n);
  }
  if (const auto chunk = top.try_key("chunk")) {
    if (spec.kind != Kind::kSweep && spec.kind != Kind::kExplore) {
      chunk->fail("chunk is only valid for kinds \"sweep\" and \"explore\"");
    }
    const std::int64_t n = chunk->as_int();
    if (n < 1) chunk->fail("chunk must be >= 1");
    spec.chunk = static_cast<std::size_t>(n);
  }

  const std::vector<ParamDef>& defs = params_for(spec.kind);
  std::optional<json::Cursor> params = top.try_key("params");
  if (params) {
    // The kind's table is the single source of truth for allowed keys.
    for (const auto& [name, value] : params->value().members) {
      (void)value;
      bool known = false;
      for (const ParamDef& def : defs) {
        if (name == def.name) {
          known = true;
          break;
        }
      }
      if (!known) {
        std::string choices;
        for (const ParamDef& def : defs) {
          if (!choices.empty()) choices += ", ";
          choices += def.name;
        }
        params->fail("unknown parameter \"" + name + "\" for kind \"" +
                     to_string(spec.kind) + "\" (allowed: " + choices + ")");
      }
    }
  }

  // Every parameter of the kind becomes an axis, defaults included, in
  // table order — so the fingerprint and expansion order never depend on
  // the spec author's key order.
  for (const ParamDef& def : defs) {
    Axis axis;
    axis.name = def.name;
    std::optional<json::Cursor> given =
        params ? params->try_key(def.name) : std::nullopt;
    if (!given) {
      axis.values.push_back(def.fallback);
    } else if (given->is_array()) {
      if (spec.kind == Kind::kSweep) {
        given->fail("kind \"sweep\" takes scalar parameters only (it shards "
                    "over protocol chunks, not parameter grids)");
      }
      if (spec.kind == Kind::kExplore) {
        given->fail("kind \"explore\" takes scalar parameters only (it "
                    "shards over schedule chunks, not parameter grids)");
      }
      if (given->size() == 0) given->fail("grid must not be empty");
      for (std::size_t i = 0; i < given->size(); ++i) {
        axis.values.push_back(read_value(def, given->at(i)));
      }
    } else {
      axis.values.push_back(read_value(def, *given));
    }
    spec.axes.push_back(std::move(axis));
  }
  return spec;
}

}  // namespace

std::uint64_t ScenarioSpec::fingerprint() const {
  util::Fingerprint fp(0x5c3a9e1db4f07268ULL);
  fp.mix(static_cast<std::uint64_t>(kind));
  fp.mix(static_cast<std::uint64_t>(chunk));
  fp.mix(static_cast<std::uint64_t>(axes.size()));
  for (const Axis& axis : axes) {
    fp.mix(axis.name);
    fp.mix(static_cast<std::uint64_t>(axis.values.size()));
    for (const ParamValue& value : axis.values) {
      fp.mix(static_cast<std::uint64_t>(value.index()));
      if (const auto* i = std::get_if<std::int64_t>(&value)) {
        fp.mix(static_cast<std::uint64_t>(*i));
      } else if (const auto* d = std::get_if<double>(&value)) {
        fp.mix_double(*d);
      } else {
        fp.mix(std::get<std::string>(value));
      }
    }
  }
  return fp.value();
}

ScenarioSpec parse_scenario_text(std::string_view text,
                                 std::string_view origin) {
  const json::Value root = json::parse(text, origin);
  return build_spec(root, std::string(origin));
}

ScenarioSpec parse_scenario_file(const std::filesystem::path& path) {
  const json::Value root = json::parse_file(path);
  return build_spec(root, path.string());
}

}  // namespace dsa::scenario
