// Declarative experiment specs — the paper as a pipeline of experiments
// instead of hand-wired bench binaries.
//
// A spec is a strict JSON document naming one experiment kind, its output
// artifact, and a parameter set in which any value may be a grid (an array
// of values). Parsing validates every key against the kind's parameter
// table — type, range, allowed names — and rejects unknown or malformed
// keys with an error naming the file, line, and `$.params.key` path.
//
//   {
//     "scenario": "fig10-homogeneous",
//     "kind": "swarm",
//     "output": "results/scenario_fig10.csv",
//     "params": { "a": ["sorts", "random", "loyal", "bt", "birds"],
//                 "b": "same", "runs": 10, "seed": 500 }
//   }
//
// Kinds: sweep (full-space PRA quantification, sharded over protocol
// chunks), swarm (piece-level mixed swarms, Sec. 5), evolution (replicator
// dynamics), ess (evolutionary stability), search (heuristic hill climb),
// explore (bounded worst-case fault-schedule search, sharded over schedule
// ordinal chunks).
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <variant>
#include <vector>

namespace dsa::scenario {

enum class Kind : std::uint8_t {
  kSweep,
  kSwarm,
  kEvolution,
  kEss,
  kSearch,
  kExplore,
};

[[nodiscard]] std::string to_string(Kind kind);

/// One parameter value. The alternative index doubles as the type tag in
/// fingerprints, so int 1 and double 1.0 hash differently.
using ParamValue = std::variant<std::int64_t, double, std::string>;

/// One spec parameter: a single value or a grid of values to sweep over.
/// Scalar params are 1-element axes; expansion takes the cartesian product
/// of all axes in spec order, last axis fastest.
struct Axis {
  std::string name;
  std::vector<ParamValue> values;

  [[nodiscard]] bool is_grid() const noexcept { return values.size() > 1; }
};

/// One job's resolved parameters: every axis pinned to a single value.
class ParamSet {
 public:
  void set(std::string name, ParamValue value);

  /// Typed lookups; throw std::logic_error when a parameter is absent or
  /// of the wrong type — spec validation guarantees neither happens for
  /// parameters in the kind's table, so a throw here is a programming bug.
  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] const std::string& get_string(const std::string& name) const;

  [[nodiscard]] const std::vector<std::pair<std::string, ParamValue>>&
  entries() const noexcept {
    return entries_;
  }

 private:
  [[nodiscard]] const ParamValue& find(const std::string& name) const;
  std::vector<std::pair<std::string, ParamValue>> entries_;  // spec order
};

/// A fully validated scenario: defaults filled in, every value range- and
/// name-checked.
struct ScenarioSpec {
  std::string name;
  Kind kind = Kind::kSweep;
  std::filesystem::path output;
  /// Worker threads for the job runner; 0 = hardware concurrency. Not part
  /// of the fingerprint: results are thread-count independent.
  std::size_t threads = 0;
  /// Retries after a job's first failed attempt.
  std::size_t retries = 1;
  /// Sweep: protocols per job; explore: schedule ordinals per job (the
  /// sharding grain). Unused by the other kinds.
  std::size_t chunk = 256;
  /// Every parameter of the kind's table, grids preserved, spec order.
  std::vector<Axis> axes;

  /// Hash of everything that affects the numbers: kind, chunk, and every
  /// axis (name, value types, values). Excludes name/output/threads/retries,
  /// so renaming or re-homing a spec keeps its manifest compatible.
  [[nodiscard]] std::uint64_t fingerprint() const;
};

/// Parses and validates a spec. Throws util::json::ParseError on malformed
/// JSON, util::json::SchemaError naming the offending key path on schema
/// violations.
ScenarioSpec parse_scenario_file(const std::filesystem::path& path);
ScenarioSpec parse_scenario_text(std::string_view text,
                                 std::string_view origin = "<spec>");

/// Resolves a protocol name ("bt", "birds", "loyal", "sorts", "random") or
/// numeric design-space id. Throws std::invalid_argument on unknown names
/// or out-of-range ids.
std::uint32_t parse_protocol_token(const std::string& token);

/// Resolves a sweep protocol selection: "all", "stride:N" (every N-th id),
/// or a comma list of protocol tokens. Throws std::invalid_argument.
std::vector<std::uint32_t> parse_protocol_selection(const std::string& text);

/// Resolves a comma list of >= 2 protocol tokens (an evolution menu).
/// Throws std::invalid_argument.
std::vector<std::uint32_t> parse_protocol_menu(const std::string& text);

}  // namespace dsa::scenario
