// Per-job execution and result merging, extracted from the runner so a
// resident frontend (the `dsa_cli serve` daemon) can execute individual
// jobs and merge rows without going through run_scenario's file-based
// resume machinery.
//
// Everything here is deterministic in the job's parameters alone — never in
// thread scheduling — which is what makes merged output independent of the
// worker count, of resume points, and of whether rows came from a cache.
#pragma once

#include "scenario/manifest.hpp"
#include "scenario/plan.hpp"
#include "util/csv.hpp"

namespace dsa::scenario {

/// Runs one job of `spec` and returns its manifest rows (job_columns
/// order). Jobs are expected to already be running on a worker pool, so
/// execution is single-threaded inside (a nested pool would deadlock the
/// runner's). Throws on simulation errors.
[[nodiscard]] JobRows execute_job(const ScenarioSpec& spec, const Job& job);

/// Merges per-job rows (plan order, one entry per plan job) into the final
/// output table. The sweep kind post-processes rows into the canonical
/// 11-column PRA dataset (normalizing performance against the global best);
/// other kinds concatenate.
[[nodiscard]] util::CsvTable merge_rows(const Plan& plan,
                                        const std::vector<JobRows>& results);

}  // namespace dsa::scenario
