// Plan expansion: a validated ScenarioSpec becomes a deterministic,
// order-stable job list. Non-sweep kinds take the cartesian product of the
// spec's parameter axes (table order, last axis fastest); the sweep kind
// shards its protocol selection into chunks. Every job carries a stable
// fingerprint derived from the spec fingerprint plus the job's pinned
// parameters, so a resumed run can prove a manifest entry still describes
// the same work.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "scenario/spec.hpp"

namespace dsa::scenario {

/// One executable unit of a scenario.
struct Job {
  std::size_t index = 0;       // position in the plan (and merge order)
  std::uint64_t fingerprint = 0;
  std::string label;           // human-readable: the grid axes pinned
  ParamSet params;             // every axis pinned to one value
  /// Sweep: the protocol ids this shard quantifies. Explore: the two-entry
  /// {begin, end} schedule-ordinal range this shard walks. Empty otherwise.
  std::vector<std::uint32_t> protocols;
};

/// The expanded scenario: jobs plus the output schema.
struct Plan {
  ScenarioSpec spec;
  std::uint64_t spec_fingerprint = 0;
  /// Columns of each job's manifest rows.
  std::vector<std::string> job_columns;
  /// Columns of the merged output CSV (sweep post-processes job rows into
  /// the canonical 11-column PRA dataset; other kinds concatenate).
  std::vector<std::string> merged_columns;
  std::vector<Job> jobs;
};

/// Expands a spec. Deterministic: the same spec always yields the same
/// jobs in the same order with the same fingerprints.
Plan expand_plan(const ScenarioSpec& spec);

}  // namespace dsa::scenario
