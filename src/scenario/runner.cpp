#include "scenario/runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <sstream>

#include "core/ess.hpp"
#include "core/evolution.hpp"
#include "core/pra.hpp"
#include "core/search.hpp"
#include "explore/explore.hpp"
#include "fault/fault_plan.hpp"
#include "scenario/explore_kind.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/profiler.hpp"
#include "obs/progress.hpp"
#include "obs/recorder.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "stats/descriptive.hpp"
#include "swarm/swarm_sim.hpp"
#include "swarming/dsa_model.hpp"
#include "util/csv.hpp"
#include "util/fingerprint.hpp"
#include "util/json.hpp"
#include "util/thread_pool.hpp"

namespace dsa::scenario {

namespace json = util::json;

namespace {

using JobRows = std::vector<std::vector<std::string>>;

std::string hex16(std::uint64_t value) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(value));
  return std::string(buffer, 16);
}

double parse_exact_double(const std::string& text) {
  return std::strtod(text.c_str(), nullptr);
}

// ---------------------------------------------------------------------------
// Job execution, one function per kind. Each returns its manifest rows
// (job_columns order). Everything here is deterministic in the job's
// parameters alone — never in thread scheduling — which is what makes the
// merged output independent of the worker count and of resume points.
// ---------------------------------------------------------------------------

swarm::ClientVariant client_from_name(const std::string& name) {
  using swarm::ClientVariant;
  if (name == "bt") return ClientVariant::kBitTorrent;
  if (name == "birds") return ClientVariant::kBirds;
  if (name == "loyal") return ClientVariant::kLoyalWhenNeeded;
  if (name == "sorts") return ClientVariant::kSortSlowest;
  if (name == "random") return ClientVariant::kRandomRank;
  throw std::logic_error("unvalidated client name: " + name);
}

swarming::SwarmingModel model_from_params(const ParamSet& params,
                                          swarming::SimEngine engine =
                                              swarming::SimEngine::kSparse,
                                          double churn = 0.0) {
  swarming::SimulationConfig sim;
  sim.rounds = static_cast<std::size_t>(params.get_int("rounds"));
  sim.engine = engine;
  sim.churn_rate = churn;
  return swarming::SwarmingModel(sim,
                                 swarming::BandwidthDistribution::piatek());
}

JobRows execute_sweep(const Job& job) {
  const ParamSet& p = job.params;
  const std::string engine_name = p.get_string("engine");
  const swarming::SimEngine engine =
      engine_name == "dense"   ? swarming::SimEngine::kDense
      : engine_name == "batch" ? swarming::SimEngine::kBatch
                               : swarming::SimEngine::kSparse;
  const swarming::SwarmingModel model =
      model_from_params(p, engine, p.get_double("churn"));
  core::PraConfig pra;
  pra.population = static_cast<std::size_t>(p.get_int("population"));
  pra.performance_runs =
      static_cast<std::size_t>(p.get_int("performance_runs"));
  pra.encounter_runs = static_cast<std::size_t>(p.get_int("encounter_runs"));
  pra.opponent_sample = static_cast<std::size_t>(p.get_int("opponent_sample"));
  pra.minority_fraction = p.get_double("minority_fraction");
  pra.seed = static_cast<std::uint64_t>(p.get_int("seed"));
  pra.batch_width = static_cast<std::size_t>(p.get_int("batch_width"));
  // Jobs already run concurrently on the runner's pool; a nested pool here
  // would deadlock it. threads=1 makes the engine's parallel_for inline on
  // this worker — and per-item seeding keeps the numbers identical to any
  // other scheduling.
  pra.threads = 1;
  const core::PraEngine pra_engine(model, pra);

  JobRows rows;
  rows.reserve(job.protocols.size());
  for (const std::uint32_t id : job.protocols) {
    const std::vector<core::ProtocolMetrics> metrics =
        pra_engine.quantify(id, id + 1);
    rows.push_back({std::to_string(id),
                    util::exact_number(metrics.front().raw_performance),
                    util::exact_number(metrics.front().robustness),
                    util::exact_number(metrics.front().aggressiveness)});
  }
  return rows;
}

JobRows execute_swarm(const Job& job) {
  const ParamSet& p = job.params;
  const std::string a_name = p.get_string("a");
  std::string b_name = p.get_string("b");
  if (b_name == "same") b_name = a_name;
  const swarm::ClientVariant a = client_from_name(a_name);
  const swarm::ClientVariant b = client_from_name(b_name);
  const auto total = static_cast<std::size_t>(p.get_int("total"));
  const double fraction = p.get_double("fraction");
  const auto runs = static_cast<std::size_t>(p.get_int("runs"));
  const auto seed = static_cast<std::uint64_t>(p.get_int("seed"));
  const double intensity = p.get_double("intensity");
  const double loss = p.get_double("loss");
  const std::int64_t timeout = p.get_int("timeout");
  const auto horizon = static_cast<std::size_t>(p.get_int("horizon"));
  const bool faulty = intensity > 0.0 || loss >= 0.0 || timeout >= 0;

  const auto count_a = std::clamp<std::size_t>(
      static_cast<std::size_t>(std::lround(fraction *
                                           static_cast<double>(total))),
      1, total - 1);

  std::vector<double> times_a, times_b, times_all;
  swarm::FaultStats totals;
  std::size_t incomplete_runs = 0;
  for (std::size_t run = 0; run < runs; ++run) {
    swarm::SwarmConfig config;
    config.piece_count = static_cast<std::size_t>(p.get_int("piece_count"));
    config.piece_size_kb = p.get_double("piece_size_kb");
    config.seeder_capacity_kbps = p.get_double("seeder_capacity");
    config.arrival_interval =
        static_cast<std::size_t>(p.get_int("arrival_interval"));
    config.seed = seed + run;
    if (faulty) {
      fault::FaultSpec spec;
      spec.intensity = intensity;
      spec.crash_fraction = p.get_double("crash_fraction");
      spec.outage_fraction = p.get_double("outage_fraction");
      spec.seed = seed + run;
      config.faults = fault::make_fault_plan(spec, total, horizon);
      if (loss >= 0.0) config.faults.message_loss = loss;
      if (timeout >= 0) {
        config.faults.piece_timeout_ticks =
            static_cast<std::size_t>(timeout);
      }
    }
    const swarm::SwarmResult result =
        swarm::run_mixed_swarm(a, b, count_a, total, config);
    const double cap = static_cast<double>(config.max_ticks);
    times_a.push_back(result.group_mean_time(0, count_a, cap));
    times_b.push_back(result.group_mean_time(count_a, total, cap));
    times_all.push_back(result.group_mean_time(0, total, cap));
    if (!result.all_completed) ++incomplete_runs;
    totals.messages_lost += result.fault_stats.messages_lost;
    totals.retries_issued += result.fault_stats.retries_issued;
    totals.crashes += result.fault_stats.crashes;
  }

  return {{a_name, b_name, std::to_string(total), std::to_string(count_a),
           util::format_number(fraction), util::format_number(intensity),
           std::to_string(seed), std::to_string(runs),
           util::format_number(stats::mean(times_a)),
           util::format_number(stats::ci95_half_width(times_a)),
           util::format_number(stats::mean(times_b)),
           util::format_number(stats::ci95_half_width(times_b)),
           util::format_number(stats::mean(times_all)),
           std::to_string(totals.messages_lost),
           std::to_string(totals.retries_issued),
           std::to_string(totals.crashes),
           std::to_string(incomplete_runs)}};
}

JobRows execute_evolution(const Job& job) {
  const ParamSet& p = job.params;
  const swarming::SwarmingModel model = model_from_params(p);
  const std::vector<std::uint32_t> menu =
      parse_protocol_menu(p.get_string("menu"));
  core::EvolutionConfig config;
  config.population = static_cast<std::size_t>(p.get_int("population"));
  config.generations = static_cast<std::size_t>(p.get_int("generations"));
  config.runs_per_generation =
      static_cast<std::size_t>(p.get_int("runs_per_generation"));
  config.mutation_rate = p.get_double("mutation");
  config.seed = static_cast<std::uint64_t>(p.get_int("seed"));
  const core::ReplicatorDynamics dynamics(model, menu, config);
  const core::EvolutionResult result = dynamics.run_from_even_split();

  std::string shares;
  for (const double share : result.final_shares()) {
    if (!shares.empty()) shares += ';';
    shares += util::format_number(share);
  }
  // CsvTable has no quoting, so the comma list becomes a ';' list.
  std::string menu_label = p.get_string("menu");
  std::replace(menu_label.begin(), menu_label.end(), ',', ';');
  const int fixated = result.fixated_menu_index;
  return {{menu_label, std::to_string(p.get_int("rounds")),
           std::to_string(config.population),
           std::to_string(config.generations),
           std::to_string(config.runs_per_generation),
           util::format_number(config.mutation_rate),
           std::to_string(config.seed), std::to_string(fixated),
           fixated >= 0
               ? std::to_string(menu[static_cast<std::size_t>(fixated)])
               : "-1",
           shares}};
}

JobRows execute_ess(const Job& job) {
  const ParamSet& p = job.params;
  const swarming::SwarmingModel model = model_from_params(p);
  const std::uint32_t protocol = parse_protocol_token(p.get_string("protocol"));
  core::EssConfig config;
  config.population = static_cast<std::size_t>(p.get_int("population"));
  config.mutant_fraction = p.get_double("mutant_fraction");
  config.runs = static_cast<std::size_t>(p.get_int("runs"));
  config.mutant_sample = static_cast<std::size_t>(p.get_int("mutant_sample"));
  config.seed = static_cast<std::uint64_t>(p.get_int("seed"));
  const core::EssQuantifier quantifier(model, config);
  const core::EssResult result = quantifier.stability_of(protocol);
  return {{p.get_string("protocol"), std::to_string(protocol),
           std::to_string(p.get_int("rounds")),
           std::to_string(config.population),
           util::format_number(config.mutant_fraction),
           std::to_string(config.runs), std::to_string(config.mutant_sample),
           std::to_string(config.seed), util::format_number(result.stability),
           std::to_string(result.invaders.size())}};
}

/// Neighbor for the search kind: re-roll one design dimension (the same
/// move set as examples/heuristic_search.cpp).
std::uint32_t mutate_protocol(std::uint32_t current, util::Rng& rng) {
  using namespace swarming;
  ProtocolSpec spec = decode_protocol(current);
  switch (rng.below(5)) {
    case 0: {
      const auto h = static_cast<std::uint8_t>(rng.below(4));
      spec.stranger_slots = h;
      spec.stranger_policy = h == 0
                                 ? StrangerPolicy::kPeriodic
                                 : static_cast<StrangerPolicy>(rng.below(3));
      break;
    }
    case 1:
      if (spec.partner_slots > 0) {
        spec.window = static_cast<CandidateWindow>(rng.below(2));
      }
      break;
    case 2:
      if (spec.partner_slots > 0) {
        spec.ranking = static_cast<RankingFunction>(rng.below(6));
      }
      break;
    case 3: {
      const auto k = static_cast<std::uint8_t>(rng.below(10));
      spec.partner_slots = k;
      if (k == 0) {
        spec.window = CandidateWindow::kTft;
        spec.ranking = RankingFunction::kFastest;
      }
      break;
    }
    default:
      spec.allocation = static_cast<AllocationPolicy>(rng.below(3));
  }
  return encode_protocol(spec);
}

JobRows execute_search(const Job& job) {
  const ParamSet& p = job.params;
  const swarming::SwarmingModel model = model_from_params(p);
  core::SearchConfig config;
  config.population = static_cast<std::size_t>(p.get_int("population"));
  config.restarts = static_cast<std::size_t>(p.get_int("restarts"));
  config.steps_per_restart =
      static_cast<std::size_t>(p.get_int("steps_per_restart"));
  config.eval_runs = static_cast<std::size_t>(p.get_int("eval_runs"));
  config.opponent_probes =
      static_cast<std::size_t>(p.get_int("opponent_probes"));
  config.performance_weight = p.get_double("performance_weight");
  config.reference_protocol = parse_protocol_token(p.get_string("reference"));
  config.seed = static_cast<std::uint64_t>(p.get_int("seed"));
  core::HeuristicSearch search(model, mutate_protocol, config);
  const core::SearchResult result = search.run();
  return {{std::to_string(p.get_int("rounds")),
           std::to_string(config.population),
           std::to_string(config.restarts),
           std::to_string(config.steps_per_restart),
           std::to_string(config.eval_runs),
           std::to_string(config.opponent_probes),
           util::format_number(config.performance_weight),
           p.get_string("reference"), std::to_string(config.seed),
           std::to_string(result.best_protocol),
           util::format_number(result.best_objective),
           std::to_string(result.evaluations)}};
}

/// Worst-value-so-far across every explore schedule this process simulated.
/// Feeds the `explore.best_value` gauge (live telemetry only — results flow
/// through the manifest rows, never through this). Process-lifetime by
/// design: a resumed search keeps ratcheting from where its own sims left
/// off.
std::atomic<double> g_explore_best{-1.0};

void note_explore_schedule(const explore::Schedule& schedule, double value) {
  if (!obs::enabled()) return;
  auto& registry = obs::Registry::global();
  registry.counter("explore.schedules_simulated").increment();
  registry.gauge("explore.frontier_depth")
      .set(static_cast<double>(schedule.size()));
  double best = g_explore_best.load(std::memory_order_relaxed);
  while (value > best && !g_explore_best.compare_exchange_weak(
                             best, value, std::memory_order_relaxed)) {
  }
  registry.gauge("explore.best_value")
      .set(g_explore_best.load(std::memory_order_relaxed));
}

/// One row per canonical schedule in the job's [begin, end) ordinal range.
/// The walk order is fixed by the domain alone, so the rows — and therefore
/// the merged CSV — are identical for any chunking, thread count, or resume
/// point.
JobRows execute_explore(const Job& job) {
  const ExploreContext ctx = explore_context(job.params);
  const std::uint64_t begin = job.protocols.at(0);
  const std::uint64_t end = job.protocols.at(1);
  const double cap = static_cast<double>(ctx.config.max_ticks);

  JobRows rows;
  explore::for_schedules_in(
      ctx.domain, begin, end,
      [&](std::uint64_t ordinal, const explore::Schedule& schedule) {
        const swarm::SwarmResult result = run_explore_schedule(ctx, schedule);
        const double value = explore_value(ctx, result);
        note_explore_schedule(schedule, value);
        std::size_t incomplete = 0;
        for (const double t : result.completion_time) {
          if (t < 0.0) ++incomplete;
        }
        rows.push_back(
            {std::to_string(ordinal), explore::describe(ctx.domain, schedule),
             std::to_string(schedule.size()),
             explore::to_string(ctx.objective), util::exact_number(value),
             util::exact_number(explore::objective_value(
                 explore::Objective::kMeanTime, result, cap)),
             util::exact_number(explore::objective_value(
                 explore::Objective::kMaxTime, result, cap)),
             std::to_string(result.fault_stats.stall_ticks),
             std::to_string(incomplete)});
      });
  return rows;
}

JobRows execute_job(const ScenarioSpec& spec, const Job& job) {
  DSA_OBS_PHASE("scenario/job");
  switch (spec.kind) {
    case Kind::kSweep: return execute_sweep(job);
    case Kind::kSwarm: return execute_swarm(job);
    case Kind::kEvolution: return execute_evolution(job);
    case Kind::kEss: return execute_ess(job);
    case Kind::kSearch: return execute_search(job);
    case Kind::kExplore: return execute_explore(job);
  }
  throw std::logic_error("unknown scenario kind");
}

// ---------------------------------------------------------------------------
// Manifest I/O. One JSONL file next to the output:
//   line 1:  {"scenario":...,"kind":...,"spec_fp":...,"jobs":N,"columns":[..]}
//   line 2+: {"job":i,"fp":"<16 hex>","rows":[["..."],...]}
// Only newline-terminated lines count (a torn tail from a kill mid-write is
// ignored and truncated away before appending), and every line is verified
// against the current plan before being trusted.
// ---------------------------------------------------------------------------

struct ManifestData {
  std::size_t valid_bytes = 0;  // bytes of trusted, newline-terminated lines
  bool header_ok = false;
  std::vector<bool> have;
  std::vector<JobRows> rows;
  std::vector<double> ms;  // per-job wall time; -1 when the line had none
};

std::string header_line(const Plan& plan) {
  std::string line = "{\"scenario\":\"" + json::escape(plan.spec.name) +
                     "\",\"kind\":\"" + to_string(plan.spec.kind) +
                     "\",\"spec_fp\":\"" + hex16(plan.spec_fingerprint) +
                     "\",\"jobs\":" + std::to_string(plan.jobs.size()) +
                     ",\"columns\":[";
  for (std::size_t i = 0; i < plan.job_columns.size(); ++i) {
    if (i > 0) line += ',';
    line += '"' + json::escape(plan.job_columns[i]) + '"';
  }
  line += "]";
  // Provenance only: the flight-recorder settings active while the jobs
  // ran. header_matches() ignores it, so a resume with different recording
  // settings still reuses finished jobs (recording never changes results).
  const obs::Recorder& recorder = obs::Recorder::global();
  line += std::string(",\"record\":{\"level\":\"") +
          obs::to_string(recorder.level()) +
          "\",\"stride\":" + std::to_string(recorder.stride()) + "}";
  line += "}";
  return line;
}

std::string job_line(const Job& job, const JobRows& rows, double wall_ms) {
  // wall_ms is provenance (latency summaries), never identity: resume
  // validation ignores it, and it feeds no fingerprint or merged cell.
  std::string line = "{\"job\":" + std::to_string(job.index) + ",\"fp\":\"" +
                     hex16(job.fingerprint) + "\",\"ms\":" +
                     util::exact_number(wall_ms) + ",\"rows\":[";
  for (std::size_t r = 0; r < rows.size(); ++r) {
    if (r > 0) line += ',';
    line += '[';
    for (std::size_t c = 0; c < rows[r].size(); ++c) {
      if (c > 0) line += ',';
      line += '"' + json::escape(rows[r][c]) + '"';
    }
    line += ']';
  }
  line += "]}";
  return line;
}

bool header_matches(const json::Value& value, const Plan& plan) {
  if (value.type != json::Value::Type::kObject) return false;
  const json::Value* fp = value.find("spec_fp");
  if (fp == nullptr || fp->type != json::Value::Type::kString ||
      fp->text != hex16(plan.spec_fingerprint)) {
    return false;
  }
  const json::Value* jobs = value.find("jobs");
  if (jobs == nullptr || jobs->type != json::Value::Type::kNumber ||
      jobs->number != static_cast<double>(plan.jobs.size())) {
    return false;
  }
  const json::Value* columns = value.find("columns");
  if (columns == nullptr || columns->type != json::Value::Type::kArray ||
      columns->items.size() != plan.job_columns.size()) {
    return false;
  }
  for (std::size_t i = 0; i < plan.job_columns.size(); ++i) {
    if (columns->items[i].type != json::Value::Type::kString ||
        columns->items[i].text != plan.job_columns[i]) {
      return false;
    }
  }
  return true;
}

/// Validates one job line; on success stores its rows and returns true.
bool accept_job_line(const json::Value& value, const Plan& plan,
                     ManifestData& data) {
  if (value.type != json::Value::Type::kObject) return false;
  const json::Value* index = value.find("job");
  if (index == nullptr || index->type != json::Value::Type::kNumber) {
    return false;
  }
  const double raw_index = index->number;
  if (raw_index < 0 || std::floor(raw_index) != raw_index ||
      raw_index >= static_cast<double>(plan.jobs.size())) {
    return false;
  }
  const auto job = static_cast<std::size_t>(raw_index);
  if (data.have[job]) return false;  // duplicates are not trusted
  const json::Value* fp = value.find("fp");
  if (fp == nullptr || fp->type != json::Value::Type::kString ||
      fp->text != hex16(plan.jobs[job].fingerprint)) {
    return false;
  }
  const json::Value* rows = value.find("rows");
  if (rows == nullptr || rows->type != json::Value::Type::kArray) {
    return false;
  }
  JobRows parsed;
  parsed.reserve(rows->items.size());
  for (const json::Value& row : rows->items) {
    if (row.type != json::Value::Type::kArray ||
        row.items.size() != plan.job_columns.size()) {
      return false;
    }
    std::vector<std::string> cells;
    cells.reserve(row.items.size());
    for (const json::Value& cell : row.items) {
      if (cell.type != json::Value::Type::kString) return false;
      cells.push_back(cell.text);
    }
    parsed.push_back(std::move(cells));
  }
  data.have[job] = true;
  data.rows[job] = std::move(parsed);
  // Optional wall time (absent in pre-latency manifests; those resume fine).
  if (const json::Value* ms = value.find("ms");
      ms != nullptr && ms->type == json::Value::Type::kNumber &&
      ms->number >= 0.0) {
    data.ms[job] = ms->number;
  }
  return true;
}

ManifestData load_manifest(const Plan& plan,
                           const std::filesystem::path& path) {
  ManifestData data;
  data.have.assign(plan.jobs.size(), false);
  data.rows.resize(plan.jobs.size());
  data.ms.assign(plan.jobs.size(), -1.0);
  std::ifstream in(path, std::ios::binary);
  if (!in) return data;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string contents = buffer.str();

  std::size_t pos = 0;
  bool first = true;
  while (pos < contents.size()) {
    const std::size_t newline = contents.find('\n', pos);
    if (newline == std::string::npos) break;  // torn tail — untrusted
    const std::string line = contents.substr(pos, newline - pos);
    json::Value value;
    try {
      value = json::parse(line, "<manifest>");
    } catch (const std::exception&) {
      break;
    }
    if (first) {
      if (!header_matches(value, plan)) break;
      data.header_ok = true;
      first = false;
    } else if (!accept_job_line(value, plan, data)) {
      break;
    }
    pos = newline + 1;
    data.valid_bytes = pos;
  }
  if (!data.header_ok) {
    // Foreign or corrupt manifest: trust nothing.
    data.valid_bytes = 0;
    data.have.assign(plan.jobs.size(), false);
    for (JobRows& rows : data.rows) rows.clear();
    data.ms.assign(plan.jobs.size(), -1.0);
  }
  return data;
}

// ---------------------------------------------------------------------------
// Merge: job rows (plan order) -> the final CSV.
// ---------------------------------------------------------------------------

void merge_and_save(const Plan& plan, const std::vector<JobRows>& results) {
  util::CsvTable table(plan.merged_columns);
  if (plan.spec.kind == Kind::kSweep) {
    // Reproduce compute_pra_dataset + save_pra_dataset exactly: collect the
    // exact raw metrics, normalize performance against the global best, and
    // format with the dataset's display precision. exact_number strings
    // round-trip, so raw/best here is bit-for-bit the uninterrupted sweep's
    // quotient.
    struct Rec {
      std::uint32_t protocol;
      double raw, robustness, aggressiveness;
    };
    std::vector<Rec> records;
    for (const JobRows& rows : results) {
      for (const std::vector<std::string>& row : rows) {
        records.push_back({static_cast<std::uint32_t>(
                               std::strtoul(row[0].c_str(), nullptr, 10)),
                           parse_exact_double(row[1]),
                           parse_exact_double(row[2]),
                           parse_exact_double(row[3])});
      }
    }
    double best = 0.0;
    for (const Rec& rec : records) best = std::max(best, rec.raw);
    for (const Rec& rec : records) {
      const swarming::ProtocolSpec spec =
          swarming::decode_protocol(rec.protocol);
      table.add_row({
          std::to_string(rec.protocol),
          swarming::to_string(spec.stranger_policy),
          std::to_string(spec.stranger_slots),
          swarming::to_string(spec.window),
          swarming::to_string(spec.ranking),
          std::to_string(spec.partner_slots),
          swarming::to_string(spec.allocation),
          util::format_number(rec.raw),
          util::format_number(best > 0.0 ? rec.raw / best : 0.0),
          util::format_number(rec.robustness),
          util::format_number(rec.aggressiveness),
      });
    }
  } else {
    for (const JobRows& rows : results) {
      for (const std::vector<std::string>& row : rows) {
        table.add_row(row);
      }
    }
  }
  table.save(plan.spec.output);
}

}  // namespace

std::filesystem::path manifest_path(const Plan& plan) {
  std::filesystem::path path = plan.spec.output;
  path += ".manifest-" + hex16(plan.spec_fingerprint) + ".jsonl";
  return path;
}

std::vector<std::size_t> completed_jobs_in_manifest(const Plan& plan) {
  const ManifestData data = load_manifest(plan, manifest_path(plan));
  std::vector<std::size_t> completed;
  for (std::size_t i = 0; i < data.have.size(); ++i) {
    if (data.have[i]) completed.push_back(i);
  }
  return completed;
}

RunReport run_scenario(const Plan& plan, const RunOptions& options) {
  DSA_OBS_PHASE("scenario/run");
  RunReport report;
  report.total = plan.jobs.size();
  report.output = plan.spec.output;
  report.manifest = manifest_path(plan);

  if (std::filesystem::exists(plan.spec.output)) {
    report.reused_output = true;
    report.skipped = report.total;
    if (options.verbose) {
      std::fprintf(stderr, "scenario '%s': output %s already exists\n",
                   plan.spec.name.c_str(),
                   plan.spec.output.string().c_str());
    }
    return report;
  }

  // Heartbeat + time-series for `dsa_cli top`/`status`: one shard per job.
  // A pure observer — no RNG, no locks shared with job execution — so the
  // merged CSV stays byte-identical with DSA_STATUS on or off.
  obs::TelemetryRun telemetry = obs::Telemetry::global().begin_run(
      {.name = obs::sanitize_run_name(plan.spec.name),
       .kind = to_string(plan.spec.kind),
       .spec_fingerprint = plan.spec_fingerprint,
       .jobs_total = plan.jobs.size(),
       .output = plan.spec.output.string()});
  telemetry.set_phase("resume-check");
  {
    std::vector<std::string> labels;
    labels.reserve(plan.jobs.size());
    for (const Job& job : plan.jobs) labels.push_back(job.label);
    telemetry.init_shards(std::move(labels));
  }

  // Resume state: trusted manifest lines become pre-completed jobs; the
  // first untrusted byte onward is truncated away so appends never chase a
  // torn tail.
  ManifestData manifest = load_manifest(plan, report.manifest);
  {
    std::error_code ignored;
    const auto size = std::filesystem::file_size(report.manifest, ignored);
    if (!ignored && size > manifest.valid_bytes) {
      if (manifest.valid_bytes == 0) {
        std::filesystem::remove(report.manifest, ignored);
      } else {
        std::filesystem::resize_file(report.manifest, manifest.valid_bytes,
                                     ignored);
      }
    }
  }

  std::vector<std::size_t> pending;
  for (std::size_t i = 0; i < plan.jobs.size(); ++i) {
    if (!manifest.have[i]) {
      pending.push_back(i);
    } else {
      telemetry.set_shard_state(i, obs::ShardState::kResumed);
    }
  }
  report.skipped = plan.jobs.size() - pending.size();
  telemetry.update_done(report.skipped);
  if (report.skipped > 0) {
    if (options.verbose) {
      std::fprintf(stderr,
                   "scenario '%s': resuming from manifest (%zu/%zu jobs "
                   "done)\n",
                   plan.spec.name.c_str(), report.skipped, report.total);
    }
    if (obs::enabled()) {
      obs::Registry::global().counter("scenario.manifest_resumes").increment();
      obs::Registry::global()
          .counter("scenario.jobs_skipped")
          .add(report.skipped);
    }
    obs::TraceSink::global().instant("scenario/manifest-resume");
  }

  const std::filesystem::path parent = report.manifest.parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent);
  const bool fresh = !manifest.header_ok;
  std::ofstream out(report.manifest, std::ios::binary | std::ios::app);
  if (!out) {
    throw std::runtime_error("cannot open scenario manifest: " +
                             report.manifest.string());
  }
  if (fresh) {
    out << header_line(plan) << '\n';
    out.flush();
  }

  std::vector<JobRows> results = std::move(manifest.rows);
  std::vector<double> job_ms = std::move(manifest.ms);
  obs::ProgressMeter meter("scenario", report.total, options.verbose);
  if (report.skipped > 0) meter.update(report.skipped);
  telemetry.set_phase("jobs");

  std::mutex sink_mutex;  // manifest stream + failure bookkeeping
  std::atomic<std::size_t> executed{0};
  std::atomic<std::size_t> retried{0};
  std::atomic<std::size_t> done{report.skipped};
  std::atomic<std::size_t> tickets{0};
  std::atomic<bool> aborted{false};
  std::size_t failures = 0;
  std::string first_error;

  const std::size_t threads =
      options.threads != 0
          ? options.threads
          : (plan.spec.threads != 0 ? plan.spec.threads
                                    : util::ThreadPool::default_thread_count());
  util::ThreadPool pool(threads);
  telemetry.watch_pool(&pool);
  // Declared after the pool, so its destructor clears the queue-depth watch
  // before the pool goes away on every exit path (including exceptions).
  struct PoolWatchGuard {
    obs::TelemetryRun& telemetry;
    ~PoolWatchGuard() { telemetry.watch_pool(nullptr); }
  } pool_watch{telemetry};
  pool.parallel_for(pending.size(), [&](std::size_t i) {
    const Job& job = plan.jobs[pending[i]];
    if (options.max_jobs > 0 &&
        tickets.fetch_add(1) >= options.max_jobs) {
      aborted.store(true, std::memory_order_relaxed);
      return;
    }
    telemetry.set_shard_state(job.index, obs::ShardState::kRunning);
    const auto start = std::chrono::steady_clock::now();
    JobRows rows;
    bool ok = false;
    for (std::size_t attempt = 0; attempt <= plan.spec.retries; ++attempt) {
      try {
        if (options.before_attempt) options.before_attempt(job.index, attempt);
        rows = execute_job(plan.spec, job);
        ok = true;
        break;
      } catch (const std::exception& error) {
        if (attempt == plan.spec.retries) {
          telemetry.set_shard_state(job.index, obs::ShardState::kFailed);
          telemetry.add_failed();
          telemetry.set_last_error("job " + std::to_string(job.index) + " (" +
                                   job.label + "): " + error.what());
          std::lock_guard lock(sink_mutex);
          ++failures;
          if (first_error.empty()) {
            first_error = "job " + std::to_string(job.index) + " (" +
                          job.label + "): " + error.what();
          }
          return;
        }
        retried.fetch_add(1, std::memory_order_relaxed);
        if (obs::enabled()) {
          obs::Registry::global().counter("scenario.jobs_retried").increment();
        }
      }
    }
    if (!ok) return;
    const double wall_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - start)
                               .count();
    {
      std::lock_guard lock(sink_mutex);
      out << job_line(job, rows, wall_ms) << '\n';
      out.flush();
    }
    results[job.index] = std::move(rows);
    job_ms[job.index] = wall_ms;
    executed.fetch_add(1, std::memory_order_relaxed);
    meter.update(done.fetch_add(1, std::memory_order_relaxed) + 1);
    telemetry.set_shard_state(job.index, obs::ShardState::kDone);
    telemetry.add_done();
    if (obs::enabled()) {
      obs::Registry::global().counter("scenario.jobs_executed").increment();
      obs::Registry::global()
          .histogram("scenario.job_ms",
                     {1.0, 10.0, 100.0, 1000.0, 10000.0, 100000.0})
          .observe(wall_ms);
    }
    obs::TraceSink::global().instant("scenario/job-done");
  });
  meter.finish();
  out.flush();

  report.executed = executed.load();
  report.retried = retried.load();
  if (aborted.load()) {
    telemetry.set_last_error("aborted by max_jobs hook");
    throw RunAborted("scenario '" + plan.spec.name + "' aborted after " +
                     std::to_string(report.executed) +
                     " jobs (max_jobs hook); manifest retained");
  }
  if (failures > 0) {
    throw std::runtime_error(
        "scenario '" + plan.spec.name + "': " + std::to_string(failures) +
        " job(s) failed after " + std::to_string(plan.spec.retries + 1) +
        " attempt(s); completed jobs are in the manifest. First error: " +
        first_error);
  }

  // Per-job latency summary: jobs executed here plus resumed jobs whose
  // manifest lines carried an "ms" field. Slowness is as much a signal as
  // failure on long sweeps, so it gets the same end-of-run visibility.
  {
    std::vector<double> samples;
    samples.reserve(job_ms.size());
    std::size_t slowest = 0;
    bool any = false;
    for (std::size_t i = 0; i < job_ms.size(); ++i) {
      if (job_ms[i] < 0.0) continue;
      samples.push_back(job_ms[i]);
      if (!any || job_ms[i] > job_ms[slowest]) slowest = i;
      any = true;
    }
    if (any) {
      report.job_ms_p50 = stats::percentile(samples, 0.50);
      report.job_ms_p90 = stats::percentile(samples, 0.90);
      report.job_ms_p99 = stats::percentile(samples, 0.99);
      report.slowest_job = static_cast<std::int64_t>(slowest);
      report.slowest_label = plan.jobs[slowest].label;
      report.slowest_ms = job_ms[slowest];
      if (options.verbose) {
        std::fprintf(stderr,
                     "scenario '%s': job latency p50=%.1fms p90=%.1fms "
                     "p99=%.1fms over %zu job(s); slowest job %zu (%s) at "
                     "%.1fms\n",
                     plan.spec.name.c_str(), report.job_ms_p50,
                     report.job_ms_p90, report.job_ms_p99, samples.size(),
                     slowest, report.slowest_label.c_str(),
                     report.slowest_ms);
      }
    }
  }

  telemetry.set_phase("merge");
  {
    DSA_OBS_PHASE("scenario/merge");
    merge_and_save(plan, results);
  }
  if (!options.keep_manifest) {
    out.close();
    std::error_code ignored;
    std::filesystem::remove(report.manifest, ignored);
  }
  return report;
}

}  // namespace dsa::scenario
