#include "scenario/runner.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <mutex>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/profiler.hpp"
#include "obs/progress.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "scenario/exec.hpp"
#include "scenario/manifest.hpp"
#include "stats/descriptive.hpp"
#include "util/csv.hpp"
#include "util/thread_pool.hpp"

namespace dsa::scenario {

std::filesystem::path manifest_path(const Plan& plan) {
  std::filesystem::path path = plan.spec.output;
  path += ".manifest-" + hex16(plan.spec_fingerprint) + ".jsonl";
  return path;
}

std::vector<std::size_t> completed_jobs_in_manifest(const Plan& plan) {
  const ManifestData data = load_manifest(plan, manifest_path(plan));
  std::vector<std::size_t> completed;
  for (std::size_t i = 0; i < data.have.size(); ++i) {
    if (data.have[i]) completed.push_back(i);
  }
  return completed;
}

RunReport run_scenario(const Plan& plan, const RunOptions& options) {
  DSA_OBS_PHASE("scenario/run");
  RunReport report;
  report.total = plan.jobs.size();
  report.output = plan.spec.output;
  report.manifest = manifest_path(plan);

  if (std::filesystem::exists(plan.spec.output)) {
    report.reused_output = true;
    report.skipped = report.total;
    if (options.verbose) {
      std::fprintf(stderr, "scenario '%s': output %s already exists\n",
                   plan.spec.name.c_str(),
                   plan.spec.output.string().c_str());
    }
    return report;
  }

  // Heartbeat + time-series for `dsa_cli top`/`status`: one shard per job.
  // A pure observer — no RNG, no locks shared with job execution — so the
  // merged CSV stays byte-identical with DSA_STATUS on or off.
  obs::TelemetryRun telemetry = obs::Telemetry::global().begin_run(
      {.name = obs::sanitize_run_name(plan.spec.name),
       .kind = to_string(plan.spec.kind),
       .spec_fingerprint = plan.spec_fingerprint,
       .jobs_total = plan.jobs.size(),
       .output = plan.spec.output.string()});
  telemetry.set_phase("resume-check");
  {
    std::vector<std::string> labels;
    labels.reserve(plan.jobs.size());
    for (const Job& job : plan.jobs) labels.push_back(job.label);
    telemetry.init_shards(std::move(labels));
  }

  // Resume state: trusted manifest lines become pre-completed jobs; the
  // first untrusted byte onward is truncated away so appends never chase a
  // torn tail.
  ManifestData manifest = load_manifest(plan, report.manifest);
  if (options.verbose && manifest.trust != ManifestTrust::kTrusted &&
      manifest.trust != ManifestTrust::kMissing) {
    std::fprintf(stderr,
                 "scenario '%s': manifest distrusted beyond byte %zu (%s: "
                 "%s)\n",
                 plan.spec.name.c_str(), manifest.valid_bytes,
                 to_string(manifest.trust), manifest.distrust_reason.c_str());
  }
  {
    std::error_code ignored;
    const auto size = std::filesystem::file_size(report.manifest, ignored);
    if (!ignored && size > manifest.valid_bytes) {
      if (manifest.valid_bytes == 0) {
        std::filesystem::remove(report.manifest, ignored);
      } else {
        std::filesystem::resize_file(report.manifest, manifest.valid_bytes,
                                     ignored);
      }
    }
  }

  std::vector<std::size_t> pending;
  for (std::size_t i = 0; i < plan.jobs.size(); ++i) {
    if (!manifest.have[i]) {
      pending.push_back(i);
    } else {
      telemetry.set_shard_state(i, obs::ShardState::kResumed);
    }
  }
  report.skipped = plan.jobs.size() - pending.size();
  telemetry.update_done(report.skipped);
  if (report.skipped > 0) {
    if (options.verbose) {
      std::fprintf(stderr,
                   "scenario '%s': resuming from manifest (%zu/%zu jobs "
                   "done)\n",
                   plan.spec.name.c_str(), report.skipped, report.total);
    }
    if (obs::enabled()) {
      obs::Registry::global().counter("scenario.manifest_resumes").increment();
      obs::Registry::global()
          .counter("scenario.jobs_skipped")
          .add(report.skipped);
    }
    obs::TraceSink::global().instant("scenario/manifest-resume");
  }

  const std::filesystem::path parent = report.manifest.parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent);
  const bool fresh = !manifest.header_ok;
  std::ofstream out(report.manifest, std::ios::binary | std::ios::app);
  if (!out) {
    throw std::runtime_error("cannot open scenario manifest: " +
                             report.manifest.string());
  }
  if (fresh) {
    out << manifest_header_line(plan) << '\n';
    out.flush();
  }

  std::vector<JobRows> results = std::move(manifest.rows);
  std::vector<double> job_ms = std::move(manifest.ms);
  obs::ProgressMeter meter("scenario", report.total, options.verbose);
  if (report.skipped > 0) meter.update(report.skipped);
  telemetry.set_phase("jobs");

  std::mutex sink_mutex;  // manifest stream + failure bookkeeping
  std::atomic<std::size_t> executed{0};
  std::atomic<std::size_t> retried{0};
  std::atomic<std::size_t> done{report.skipped};
  std::atomic<std::size_t> tickets{0};
  std::atomic<bool> aborted{false};
  std::size_t failures = 0;
  std::string first_error;

  const std::size_t threads =
      options.threads != 0
          ? options.threads
          : (plan.spec.threads != 0 ? plan.spec.threads
                                    : util::ThreadPool::default_thread_count());
  util::ThreadPool pool(threads);
  telemetry.watch_pool(&pool);
  // Declared after the pool, so its destructor clears the queue-depth watch
  // before the pool goes away on every exit path (including exceptions).
  struct PoolWatchGuard {
    obs::TelemetryRun& telemetry;
    ~PoolWatchGuard() { telemetry.watch_pool(nullptr); }
  } pool_watch{telemetry};
  pool.parallel_for(pending.size(), [&](std::size_t i) {
    const Job& job = plan.jobs[pending[i]];
    if (options.max_jobs > 0 &&
        tickets.fetch_add(1) >= options.max_jobs) {
      aborted.store(true, std::memory_order_relaxed);
      return;
    }
    telemetry.set_shard_state(job.index, obs::ShardState::kRunning);
    const auto start = std::chrono::steady_clock::now();
    JobRows rows;
    bool ok = false;
    for (std::size_t attempt = 0; attempt <= plan.spec.retries; ++attempt) {
      try {
        if (options.before_attempt) options.before_attempt(job.index, attempt);
        rows = execute_job(plan.spec, job);
        ok = true;
        break;
      } catch (const std::exception& error) {
        if (attempt == plan.spec.retries) {
          telemetry.set_shard_state(job.index, obs::ShardState::kFailed);
          telemetry.add_failed();
          telemetry.set_last_error("job " + std::to_string(job.index) + " (" +
                                   job.label + "): " + error.what());
          std::lock_guard lock(sink_mutex);
          ++failures;
          if (first_error.empty()) {
            first_error = "job " + std::to_string(job.index) + " (" +
                          job.label + "): " + error.what();
          }
          return;
        }
        retried.fetch_add(1, std::memory_order_relaxed);
        if (obs::enabled()) {
          obs::Registry::global().counter("scenario.jobs_retried").increment();
        }
      }
    }
    if (!ok) return;
    const double wall_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - start)
                               .count();
    {
      std::lock_guard lock(sink_mutex);
      out << manifest_job_line(job, rows, wall_ms) << '\n';
      out.flush();
    }
    results[job.index] = std::move(rows);
    job_ms[job.index] = wall_ms;
    executed.fetch_add(1, std::memory_order_relaxed);
    meter.update(done.fetch_add(1, std::memory_order_relaxed) + 1);
    telemetry.set_shard_state(job.index, obs::ShardState::kDone);
    telemetry.add_done();
    if (obs::enabled()) {
      obs::Registry::global().counter("scenario.jobs_executed").increment();
      obs::Registry::global()
          .histogram("scenario.job_ms",
                     {1.0, 10.0, 100.0, 1000.0, 10000.0, 100000.0})
          .observe(wall_ms);
    }
    obs::TraceSink::global().instant("scenario/job-done");
  });
  meter.finish();
  out.flush();

  report.executed = executed.load();
  report.retried = retried.load();
  if (aborted.load()) {
    telemetry.set_last_error("aborted by max_jobs hook");
    throw RunAborted("scenario '" + plan.spec.name + "' aborted after " +
                     std::to_string(report.executed) +
                     " jobs (max_jobs hook); manifest retained");
  }
  if (failures > 0) {
    throw std::runtime_error(
        "scenario '" + plan.spec.name + "': " + std::to_string(failures) +
        " job(s) failed after " + std::to_string(plan.spec.retries + 1) +
        " attempt(s); completed jobs are in the manifest. First error: " +
        first_error);
  }

  // Per-job latency summary: jobs executed here plus resumed jobs whose
  // manifest lines carried an "ms" field. Slowness is as much a signal as
  // failure on long sweeps, so it gets the same end-of-run visibility.
  {
    std::vector<double> samples;
    samples.reserve(job_ms.size());
    std::size_t slowest = 0;
    bool any = false;
    for (std::size_t i = 0; i < job_ms.size(); ++i) {
      if (job_ms[i] < 0.0) continue;
      samples.push_back(job_ms[i]);
      if (!any || job_ms[i] > job_ms[slowest]) slowest = i;
      any = true;
    }
    if (any) {
      report.job_ms_p50 = stats::percentile(samples, 0.50);
      report.job_ms_p90 = stats::percentile(samples, 0.90);
      report.job_ms_p99 = stats::percentile(samples, 0.99);
      report.slowest_job = static_cast<std::int64_t>(slowest);
      report.slowest_label = plan.jobs[slowest].label;
      report.slowest_ms = job_ms[slowest];
      if (options.verbose) {
        std::fprintf(stderr,
                     "scenario '%s': job latency p50=%.1fms p90=%.1fms "
                     "p99=%.1fms over %zu job(s); slowest job %zu (%s) at "
                     "%.1fms\n",
                     plan.spec.name.c_str(), report.job_ms_p50,
                     report.job_ms_p90, report.job_ms_p99, samples.size(),
                     slowest, report.slowest_label.c_str(),
                     report.slowest_ms);
      }
    }
  }

  telemetry.set_phase("merge");
  {
    DSA_OBS_PHASE("scenario/merge");
    merge_rows(plan, results).save(plan.spec.output);
  }
  if (!options.keep_manifest) {
    out.close();
    std::error_code ignored;
    std::filesystem::remove(report.manifest, ignored);
  }
  return report;
}

}  // namespace dsa::scenario
