#include "scenario/explore_kind.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "explore/counterexample.hpp"

namespace dsa::scenario {

ExploreContext explore_context(const ParamSet& params) {
  ExploreContext ctx;
  ctx.a_name = params.get_string("a");
  ctx.b_name = params.get_string("b");
  if (ctx.b_name == "same") ctx.b_name = ctx.a_name;
  ctx.a = explore::client_from_name(ctx.a_name);
  ctx.b = explore::client_from_name(ctx.b_name);
  ctx.total = static_cast<std::size_t>(params.get_int("total"));
  const double fraction = params.get_double("fraction");
  ctx.count_a = std::clamp<std::size_t>(
      static_cast<std::size_t>(
          std::lround(fraction * static_cast<double>(ctx.total))),
      1, ctx.total - 1);

  ctx.config.piece_count =
      static_cast<std::size_t>(params.get_int("piece_count"));
  ctx.config.piece_size_kb = params.get_double("piece_size_kb");
  ctx.config.seeder_capacity_kbps = params.get_double("seeder_capacity");
  ctx.config.max_ticks = static_cast<std::size_t>(params.get_int("max_ticks"));
  ctx.config.seed = static_cast<std::uint64_t>(params.get_int("seed"));

  ctx.objective = explore::parse_objective(params.get_string("objective"));
  ctx.loss = params.get_double("loss");
  ctx.timeout = static_cast<std::size_t>(params.get_int("timeout"));

  const auto crash_leechers =
      static_cast<std::size_t>(params.get_int("crash_leechers"));
  if (crash_leechers > ctx.total) {
    throw std::invalid_argument(
        "explore.crash_leechers: " + std::to_string(crash_leechers) +
        " exceeds total leechers (" + std::to_string(ctx.total) + ")");
  }
  const auto crash_downtime =
      static_cast<std::size_t>(params.get_int("crash_downtime"));
  for (std::size_t l = 0; l < crash_leechers; ++l) {
    ctx.domain.templates.push_back(
        {explore::FaultTemplate::Kind::kCrash, l, crash_downtime});
  }
  const auto outage_count =
      static_cast<std::size_t>(params.get_int("outage_count"));
  const auto outage_length =
      static_cast<std::size_t>(params.get_int("outage_length"));
  for (std::size_t i = 0; i < outage_count; ++i) {
    ctx.domain.templates.push_back(
        {explore::FaultTemplate::Kind::kOutage, 0, outage_length});
  }

  const auto tick_start =
      static_cast<std::size_t>(params.get_int("tick_start"));
  const auto tick_step = static_cast<std::size_t>(params.get_int("tick_step"));
  const auto tick_count =
      static_cast<std::size_t>(params.get_int("tick_count"));
  for (std::size_t i = 0; i < tick_count; ++i) {
    ctx.domain.ticks.push_back(tick_start + i * tick_step);
  }
  ctx.domain.max_faults =
      static_cast<std::size_t>(params.get_int("max_faults"));
  ctx.domain.validate(ctx.total, ctx.config.max_ticks);
  return ctx;
}

swarm::SwarmResult run_explore_schedule(const ExploreContext& ctx,
                                        const explore::Schedule& schedule) {
  swarm::SwarmConfig config = ctx.config;
  config.faults =
      explore::materialize(ctx.domain, schedule, ctx.loss, ctx.timeout);
  return swarm::run_mixed_swarm(ctx.a, ctx.b, ctx.count_a, ctx.total, config);
}

double explore_value(const ExploreContext& ctx,
                     const swarm::SwarmResult& result) {
  return explore::objective_value(
      ctx.objective, result, static_cast<double>(ctx.config.max_ticks));
}

}  // namespace dsa::scenario
