// Discrete-time piece-level BitTorrent swarm simulator — the validation
// substrate of Sec. 5, replacing the authors' instrumented client + cluster.
//
// Mechanics modeled:
//  * one seeder (128 KBps in the paper's setup) that stays for the whole
//    experiment and unchokes interested leechers round-robin (uniform
//    interaction, as the paper assumes of seeders);
//  * leechers with heterogeneous upload capacities (Piatek et al.
//    distribution), downloading a fixed-size file split into pieces;
//  * choke rounds every `rechoke_interval` ticks: each leecher ranks the
//    interested peers per its ClientVariant and unchokes the top
//    `regular_slots`; an optimistic slot rotates every `optimistic_period`
//    choke rounds (policy varies per variant, see client.hpp);
//  * per-tick transfers: a peer's capacity splits equally across the
//    unchoked peers that are actively downloading from it; receivers pick
//    pieces rarest-first, one in-flight piece per (receiver, sender) pair;
//  * leechers depart the moment they complete, as in the paper's setup
//    ("peers leave upon completing their download");
//  * optional fault injection driven by a deterministic FaultPlan (see
//    fault/fault_plan.hpp): per-link message loss, in-flight piece timeouts
//    with exponential-backoff retry, leecher crash/rejoin, and seeder outage
//    windows. An empty plan leaves the run bitwise-identical to the
//    fault-free baseline.
//
// One tick is one second; download times are reported in seconds.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault_plan.hpp"
#include "swarm/client.hpp"

namespace dsa::swarm {

/// Experiment controls, defaulted to the paper's Sec. 5 setup (5 MB file,
/// 128 KBps seeder, 50 leechers supplied by the caller).
struct SwarmConfig {
  std::size_t piece_count = 80;          // 5 MB in 64 KB pieces
  double piece_size_kb = 64.0;
  double seeder_capacity_kbps = 128.0;
  std::size_t regular_slots = 4;         // leecher unchoke slots (Sort-S: 1)
  std::size_t seeder_slots = 5;
  std::size_t rechoke_interval = 10;     // ticks between choke rounds
  std::size_t optimistic_period = 3;     // choke rounds per optimistic slot
  std::size_t max_ticks = 20000;         // safety cap
  std::uint64_t seed = 1;
  /// Ticks between successive leecher arrivals; 0 = everyone starts at
  /// tick 0 (the paper's setup). With a positive interval, leecher l joins
  /// at tick l * arrival_interval and its download time is measured from
  /// its own arrival.
  std::size_t arrival_interval = 0;
  /// When true, SwarmResult::series records per-tick swarm health.
  bool record_series = false;
  /// Fault schedule replayed during the run; default-constructed = no
  /// faults. Validated (together with the fields above) on entry to
  /// run_swarm.
  fault::FaultPlan faults;

  /// Rejects degenerate configurations with std::invalid_argument naming
  /// the offending field.
  void validate(std::size_t leecher_count) const;
};

/// One per-tick snapshot of swarm health (record_series only).
struct SwarmTick {
  std::uint32_t active_leechers = 0;    // arrived, not yet complete
  std::uint32_t completed_leechers = 0;
  double transferred_kb = 0.0;          // bytes moved this tick
  double mean_progress = 0.0;           // mean piece completion in [0, 1]
};

/// Degradation instrumentation accumulated over one run; all zeros (and a
/// negative recovery time) when the fault plan is empty.
struct FaultStats {
  std::uint64_t messages_lost = 0;   // per-tick deliveries eaten by loss
  double lost_kb = 0.0;              // bytes those deliveries carried
  std::uint64_t retries_issued = 0;  // in-flight pieces abandoned on timeout
  std::uint64_t crashes = 0;         // crash events that actually struck
  std::uint64_t pieces_wiped = 0;    // pieces erased by those crashes
  std::uint64_t stall_ticks = 0;     // ticks with active leechers but no bytes
  std::uint64_t seeder_down_ticks = 0;
  /// Mean ticks from a seeder-outage end until the seeder uploads again
  /// (re-unchoke latency); negative when no outage ended during the run.
  double mean_seeder_recovery_ticks = -1.0;
};

/// Per-leecher outcome of one swarm run.
struct SwarmResult {
  /// Download time in seconds per leecher (input order), measured from the
  /// leecher's own arrival; < 0 when it never finished within max_ticks.
  std::vector<double> completion_time;
  bool all_completed = false;

  /// Instrumentation: bytes each leecher uploaded / downloaded (KB), input
  /// order. Upload counts only bytes that reached a receiver.
  std::vector<double> uploaded_kb;
  std::vector<double> downloaded_kb;

  /// Per-tick swarm health; empty unless SwarmConfig::record_series.
  std::vector<SwarmTick> series;

  /// Degradation instrumentation (see FaultStats).
  FaultStats fault_stats;

  /// Mean completion time over leechers [begin, end); unfinished leechers
  /// count as the run's duration cap. Throws std::invalid_argument on a bad
  /// range.
  [[nodiscard]] double group_mean_time(std::size_t begin, std::size_t end,
                                       double cap_seconds) const;
};

/// Runs one swarm: `leechers[i]` runs the given variant with upload capacity
/// `capacities[i]` (KBps). Throws std::invalid_argument on empty/mismatched
/// inputs or non-positive capacities.
SwarmResult run_swarm(const std::vector<ClientVariant>& leechers,
                      const std::vector<double>& capacities,
                      const SwarmConfig& config);

/// Sec. 5 experiment helper: a 50-leecher swarm in which `count_a` leechers
/// run `a` and the rest run `b`, capacities drawn from the Piatek
/// distribution (stratified, shuffled by the run's seed). Returns the full
/// result plus the group boundary = count_a (group A occupies [0, count_a)).
SwarmResult run_mixed_swarm(ClientVariant a, ClientVariant b,
                            std::size_t count_a, std::size_t total,
                            const SwarmConfig& config);

}  // namespace dsa::swarm
