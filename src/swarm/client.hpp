// Client protocol variants evaluated in the paper's validation (Sec. 5),
// standing in for the modified instrumented BitTorrent client.
#pragma once

#include <string>

namespace dsa::swarm {

/// The five clients of Figures 9 and 10.
enum class ClientVariant {
  /// Reference BitTorrent: rank interested peers by bytes they uploaded to
  /// us in the last rechoke period (fastest first); rotating optimistic
  /// unchoke.
  kBitTorrent,
  /// Birds (Sec. 2.3): rank by proximity of the peer's upload capacity to
  /// our own; otherwise BitTorrent-like.
  kBirds,
  /// Loyal-When-needed (Sec. 5): rank by length of uninterrupted
  /// cooperation; the optimistic slot only opens while regular slots are
  /// short of cooperating partners (the When-needed stranger policy).
  kLoyalWhenNeeded,
  /// Sort-S (Sec. 4.4): rank slowest-first, single regular slot, never
  /// optimistically unchoke (Defect stranger policy).
  kSortSlowest,
  /// Random ranking (Fig. 10's "Random"): uniform choice among interested
  /// peers.
  kRandomRank,
};

std::string to_string(ClientVariant variant);

}  // namespace dsa::swarm
