#include "swarm/swarm_sim.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/profiler.hpp"
#include "obs/recorder.hpp"
#include "obs/sketch/sketch.hpp"
#include "swarming/bandwidth.hpp"
#include "util/rng.hpp"

namespace dsa::swarm {

std::string to_string(ClientVariant variant) {
  switch (variant) {
    case ClientVariant::kBitTorrent: return "BitTorrent";
    case ClientVariant::kBirds: return "Birds";
    case ClientVariant::kLoyalWhenNeeded: return "Loyal-When-needed";
    case ClientVariant::kSortSlowest: return "Sort-S";
    case ClientVariant::kRandomRank: return "Random";
  }
  return "?";
}

void SwarmConfig::validate(std::size_t leecher_count) const {
  if (piece_count == 0) {
    throw std::invalid_argument("SwarmConfig.piece_count: must be > 0");
  }
  if (!(piece_size_kb > 0.0)) {
    throw std::invalid_argument("SwarmConfig.piece_size_kb: must be > 0");
  }
  if (!(seeder_capacity_kbps > 0.0)) {
    throw std::invalid_argument(
        "SwarmConfig.seeder_capacity_kbps: must be > 0");
  }
  if (regular_slots == 0) {
    throw std::invalid_argument("SwarmConfig.regular_slots: must be > 0");
  }
  if (seeder_slots == 0) {
    throw std::invalid_argument("SwarmConfig.seeder_slots: must be > 0");
  }
  if (rechoke_interval == 0) {
    throw std::invalid_argument("SwarmConfig.rechoke_interval: must be > 0");
  }
  if (optimistic_period == 0) {
    throw std::invalid_argument("SwarmConfig.optimistic_period: must be > 0");
  }
  if (max_ticks == 0) {
    throw std::invalid_argument("SwarmConfig.max_ticks: must be > 0");
  }
  faults.validate(leecher_count, max_ticks);
}

double SwarmResult::group_mean_time(std::size_t begin, std::size_t end,
                                    double cap_seconds) const {
  if (begin >= end || end > completion_time.size()) {
    throw std::invalid_argument("SwarmResult::group_mean_time: bad range");
  }
  double sum = 0.0;
  for (std::size_t i = begin; i < end; ++i) {
    sum += completion_time[i] >= 0.0 ? completion_time[i] : cap_seconds;
  }
  return sum / static_cast<double>(end - begin);
}

namespace {

constexpr std::int32_t kNoPiece = -1;
constexpr std::int32_t kNoPeer = -1;

/// Full mutable state of one swarm run. Peer 0 is the seeder; leecher l of
/// the input sits at index l + 1.
class SwarmEngine {
 public:
  SwarmEngine(const std::vector<ClientVariant>& leechers,
              const std::vector<double>& capacities,
              const SwarmConfig& config)
      : config_(config),
        plan_(config.faults),
        n_(leechers.size() + 1),
        pieces_(config.piece_count),
        rng_(config.seed),
        // Faults draw from their own stream so an empty plan leaves the
        // baseline run bitwise-identical.
        fault_rng_(util::hash64(config.seed ^ 0x0fa17ed5eedc0deULL)),
        variant_(n_, ClientVariant::kBitTorrent),
        capacity_(n_, config.seeder_capacity_kbps),
        have_(n_ * pieces_, 0),
        have_count_(n_, 0),
        active_(n_, 1),
        completion_tick_(n_, -1),
        availability_(pieces_, 1),  // the seeder has everything
        claimed_(n_ * pieces_, 0),
        piece_from_(n_ * n_, kNoPiece),
        bytes_done_(n_ * pieces_, 0.0),
        recv_cur_(n_ * n_, 0.0),
        recv_prev_(n_ * n_, 0.0),
        streak_(n_ * n_, 0),
        unchoked_(n_),
        optimistic_(n_, kNoPeer),
        rechokes_since_rotation_(n_, 0),
        tie_priority_(n_, 0),
        arrival_tick_(n_, 0),
        uploaded_(n_, 0.0),
        downloaded_(n_, 0.0),
        crashed_until_(n_, -1),
        last_progress_(n_ * n_, 0),
        blocked_until_(n_ * n_, 0),
        backoff_(n_ * n_, config.faults.retry_backoff_ticks),
        crash_schedule_(config.faults.crashes) {
    for (std::size_t l = 0; l < leechers.size(); ++l) {
      variant_[l + 1] = leechers[l];
      capacity_[l + 1] = capacities[l];
      if (config.arrival_interval > 0) {
        arrival_tick_[l + 1] =
            static_cast<std::int64_t>(l * config.arrival_interval);
        if (arrival_tick_[l + 1] > 0) active_[l + 1] = 0;
      }
    }
    // Seeder starts complete.
    for (std::size_t p = 0; p < pieces_; ++p) have_[p] = 1;
    have_count_[0] = pieces_;
    completion_tick_[0] = 0;
    // Crash events fire in tick order; stable sort keeps same-tick events in
    // plan order so replays are deterministic.
    std::stable_sort(crash_schedule_.begin(), crash_schedule_.end(),
                     [](const fault::CrashEvent& a, const fault::CrashEvent& b) {
                       return a.tick < b.tick;
                     });
  }

  SwarmResult run() {
    DSA_OBS_PHASE("swarm/run");
    if (capture_.rounds()) {
      capture_.emit({.kind = obs::EventKind::kRun,
                     .run = config_.seed,
                     .value = {{static_cast<double>(n_),
                                static_cast<double>(config_.max_ticks),
                                static_cast<double>(config_.piece_count), 0.0}},
                     .label = "swarm",
                     .detail = capture_.context()});
    }
    SwarmResult result;
    std::size_t tick = 0;
    {
      DSA_OBS_PHASE("swarm/ticks");
      for (; tick < config_.max_ticks && incomplete_leechers() > 0; ++tick) {
        tick_ = static_cast<std::uint32_t>(tick);
        record_full_tick_ = capture_.full() && capture_.sampled(tick_);
        apply_faults(tick);
        process_arrivals(tick);
        if (tick % config_.rechoke_interval == 0) rechoke();
        tick_transferred_ = 0.0;
        transfer(tick);
        if (plan_.piece_timeout_ticks > 0) expire_timeouts(tick);
        process_departures();
        if (tick_transferred_ == 0.0 && any_active_incomplete()) {
          ++stats_.stall_ticks;
        }
        if (config_.record_series) {
          result.series.push_back(snapshot());
        }
      }
    }
    result.completion_time.resize(n_ - 1);
    result.uploaded_kb.resize(n_ - 1);
    result.downloaded_kb.resize(n_ - 1);
    result.all_completed = true;
    for (std::size_t l = 0; l + 1 < n_; ++l) {
      const std::int64_t t = completion_tick_[l + 1];
      result.completion_time[l] =
          t >= 0 ? static_cast<double>(t - arrival_tick_[l + 1]) : -1.0;
      if (t < 0) result.all_completed = false;
      result.uploaded_kb[l] = uploaded_[l + 1];
      result.downloaded_kb[l] = downloaded_[l + 1];
    }
    if (capture_.rounds()) {
      for (std::size_t l = 0; l + 1 < n_; ++l) {
        capture_.emit({.kind = obs::EventKind::kLeecher,
                       .run = config_.seed,
                       .actor = static_cast<std::uint32_t>(l),
                       .value = {{capacity_[l + 1], result.completion_time[l],
                                  result.uploaded_kb[l],
                                  result.downloaded_kb[l]}},
                       .label = to_string(variant_[l + 1])});
      }
    }
    stats_.mean_seeder_recovery_ticks =
        recoveries_ > 0 ? recovery_total_ / static_cast<double>(recoveries_)
                        : -1.0;
    result.fault_stats = stats_;
    flush_metrics(tick);
    return result;
  }

  /// Exports the run's tick count and FaultStats into the metrics registry
  /// (one flush per run; the tick loop itself is untouched).
  void flush_metrics(std::size_t ticks) const {
    if (!obs::enabled()) return;
    auto& registry = obs::Registry::global();
    registry.counter("swarm.runs").increment();
    registry.counter("swarm.ticks").add(ticks);
    registry.counter("swarm.fault.messages_lost").add(stats_.messages_lost);
    registry.gauge("swarm.fault.lost_kb").add(stats_.lost_kb);
    registry.counter("swarm.fault.retries_issued").add(stats_.retries_issued);
    registry.counter("swarm.fault.crashes").add(stats_.crashes);
    registry.counter("swarm.fault.pieces_wiped").add(stats_.pieces_wiped);
    registry.counter("swarm.fault.stall_ticks").add(stats_.stall_ticks);
    registry.counter("swarm.fault.seeder_down_ticks")
        .add(stats_.seeder_down_ticks);
  }

 private:
  // --- health sketches ----------------------------------------------------
  // Pure observers feeding the swarm-health timelines: never touch rng_,
  // fault_rng_, or any simulation state, so results are bitwise-identical
  // with observability on or off.

  /// Download progress (completed-piece fraction) of one leecher, sampled
  /// every time it finishes a piece.
  void observe_progress(std::size_t receiver) {
    if (!obs::enabled()) return;
    static const obs::QuantileSketch sketch =
        obs::SketchRegistry::global().sketch("swarm.progress");
    static const obs::MomentsAccumulator moments =
        obs::SketchRegistry::global().moments("swarm.progress");
    const double fraction = static_cast<double>(have_count_[receiver]) /
                            static_cast<double>(pieces_);
    sketch.insert(fraction);
    moments.insert(fraction);
  }

  /// Upload-capacity utilization of every active peer over the choke window
  /// that just closed (recv_prev_ after the window roll). Sampled once per
  /// choke round.
  void observe_peer_utilization() {
    if (!obs::enabled()) return;
    static const obs::QuantileSketch sketch =
        obs::SketchRegistry::global().sketch("swarm.peer_util");
    static const obs::MomentsAccumulator moments =
        obs::SketchRegistry::global().moments("swarm.peer_util");
    const double window =
        static_cast<double>(config_.rechoke_interval);
    for (std::size_t sender = 0; sender < n_; ++sender) {
      if (!active_[sender] || !(capacity_[sender] > 0.0)) continue;
      double sent = 0.0;
      for (std::size_t receiver = 0; receiver < n_; ++receiver) {
        sent += recv_prev_[receiver * n_ + sender];
      }
      const double utilization = sent / (capacity_[sender] * window);
      sketch.insert(utilization);
      moments.insert(utilization);
    }
  }

  /// Fraction of a leecher's fresh unchoke list that was not unchoked in
  /// the previous round (prev_unchoked_ snapshot). 0 = stable partners,
  /// 1 = full churn.
  void observe_switch_rate(const std::vector<std::uint32_t>& fresh) {
    static const obs::QuantileSketch sketch =
        obs::SketchRegistry::global().sketch("swarm.switch_rate");
    static const obs::MomentsAccumulator moments =
        obs::SketchRegistry::global().moments("swarm.switch_rate");
    std::size_t switched = 0;
    for (std::uint32_t peer : fresh) {
      if (std::find(prev_unchoked_.begin(), prev_unchoked_.end(), peer) ==
          prev_unchoked_.end()) {
        ++switched;
      }
    }
    const double rate =
        static_cast<double>(switched) / static_cast<double>(fresh.size());
    sketch.insert(rate);
    moments.insert(rate);
  }
  void process_arrivals(std::size_t tick) {
    for (std::size_t i = 1; i < n_; ++i) {
      if (active_[i] || is_complete(i)) continue;
      if (crashed_until_[i] >= 0) {
        // A crashed leecher sits out its downtime, then rejoins as a fresh
        // peer (its piece map was wiped at crash time).
        if (static_cast<std::int64_t>(tick) >= crashed_until_[i]) {
          active_[i] = 1;
          crashed_until_[i] = -1;
        }
      } else if (static_cast<std::int64_t>(tick) >= arrival_tick_[i]) {
        active_[i] = 1;
      }
    }
  }

  // --- fault injection ----------------------------------------------------

  void apply_faults(std::size_t tick) {
    while (next_crash_ < crash_schedule_.size() &&
           crash_schedule_[next_crash_].tick <= tick) {
      crash_leecher(crash_schedule_[next_crash_], tick);
      ++next_crash_;
    }
    if (!plan_.seeder_outages.empty()) {
      const bool down = plan_.seeder_down(tick);
      if (down && !seeder_out_) {
        take_seeder_down(tick);
      } else if (!down && seeder_out_) {
        restore_seeder(tick);
      }
      if (seeder_out_) ++stats_.seeder_down_ticks;
    }
  }

  /// Wipes a leecher's pieces and history and schedules its rejoin. No-op
  /// when the leecher already completed, already crashed, or has not
  /// arrived yet.
  void crash_leecher(const fault::CrashEvent& crash, std::size_t tick) {
    const std::size_t i = crash.leecher + 1;
    if (!active_[i] || is_complete(i)) return;
    ++stats_.crashes;
    stats_.pieces_wiped += have_count_[i];
    if (capture_.rounds()) {
      capture_.emit({.kind = obs::EventKind::kFault,
                     .run = config_.seed,
                     .time = static_cast<std::uint32_t>(tick),
                     .actor = static_cast<std::uint32_t>(i),
                     .value = {{static_cast<double>(crash.downtime),
                                static_cast<double>(have_count_[i]), 0.0, 0.0}},
                     .label = "crash"});
    }
    for (std::size_t p = 0; p < pieces_; ++p) {
      if (have_[i * pieces_ + p]) --availability_[p];
      have_[i * pieces_ + p] = 0;
      claimed_[i * pieces_ + p] = 0;
      bytes_done_[i * pieces_ + p] = 0.0;
    }
    have_count_[i] = 0;
    // In-flight pieces it was receiving die with it (claimed_ row already
    // cleared above); pieces it was sending free up for other senders.
    for (std::size_t sender = 0; sender < n_; ++sender) {
      piece_from_[i * n_ + sender] = kNoPiece;
    }
    for (std::size_t receiver = 0; receiver < n_; ++receiver) {
      release_assignment(receiver, i);
    }
    // The rejoined peer is a stranger: no receipts, streaks, or backoff
    // state survive in either direction.
    for (std::size_t j = 0; j < n_; ++j) {
      const std::size_t row = i * n_ + j;
      const std::size_t col = j * n_ + i;
      recv_cur_[row] = recv_cur_[col] = 0.0;
      recv_prev_[row] = recv_prev_[col] = 0.0;
      streak_[row] = streak_[col] = 0;
      last_progress_[row] = last_progress_[col] = 0;
      blocked_until_[row] = blocked_until_[col] = 0;
      backoff_[row] = backoff_[col] = plan_.retry_backoff_ticks;
    }
    unchoked_[i].clear();
    optimistic_[i] = kNoPeer;
    active_[i] = 0;
    crashed_until_[i] = static_cast<std::int64_t>(tick + crash.downtime);
  }

  void take_seeder_down(std::size_t tick) {
    seeder_out_ = true;
    down_since_ = tick;
    active_[0] = 0;
    for (std::size_t p = 0; p < pieces_; ++p) --availability_[p];
    for (std::size_t receiver = 0; receiver < n_; ++receiver) {
      release_assignment(receiver, 0);
    }
    unchoked_[0].clear();
    if (capture_.rounds()) {
      // value[0] = the containing window's end tick, so a report can draw
      // the full outage bar from its begin event alone.
      double end_tick = 0.0;
      for (const fault::SeederOutage& outage : plan_.seeder_outages) {
        if (tick >= outage.begin_tick && tick < outage.end_tick) {
          end_tick = static_cast<double>(outage.end_tick);
          break;
        }
      }
      capture_.emit({.kind = obs::EventKind::kFault,
                     .run = config_.seed,
                     .time = static_cast<std::uint32_t>(tick),
                     .actor = 0,
                     .value = {{end_tick, 0.0, 0.0, 0.0}},
                     .label = "outage_begin"});
    }
  }

  void restore_seeder(std::size_t tick) {
    seeder_out_ = false;
    active_[0] = 1;
    for (std::size_t p = 0; p < pieces_; ++p) ++availability_[p];
    awaiting_recovery_ = true;
    recovery_start_ = tick;
    if (capture_.rounds()) {
      capture_.emit({.kind = obs::EventKind::kFault,
                     .run = config_.seed,
                     .time = static_cast<std::uint32_t>(tick),
                     .actor = 0,
                     .value = {{static_cast<double>(tick - down_since_), 0.0,
                                0.0, 0.0}},
                     .label = "outage_end"});
    }
  }

  /// Abandons in-flight pieces that made no progress for the timeout window
  /// and puts the (receiver, sender) pair in exponential backoff.
  void expire_timeouts(std::size_t tick) {
    for (std::size_t pair = 0; pair < n_ * n_; ++pair) {
      if (piece_from_[pair] == kNoPiece) continue;
      if (tick - last_progress_[pair] < plan_.piece_timeout_ticks) continue;
      const std::size_t receiver = pair / n_;
      const std::size_t sender = pair % n_;
      release_assignment(receiver, sender);
      ++stats_.retries_issued;
      blocked_until_[pair] = tick + backoff_[pair];
      backoff_[pair] = std::min(backoff_[pair] * 2, plan_.max_backoff_ticks);
    }
  }

  [[nodiscard]] bool any_active_incomplete() const {
    for (std::size_t i = 1; i < n_; ++i) {
      if (active_[i] && !is_complete(i)) return true;
    }
    return false;
  }

  [[nodiscard]] SwarmTick snapshot() const {
    SwarmTick snap;
    double progress = 0.0;
    for (std::size_t i = 1; i < n_; ++i) {
      if (is_complete(i)) {
        ++snap.completed_leechers;
      } else if (active_[i]) {
        ++snap.active_leechers;
      }
      progress += static_cast<double>(have_count_[i]) /
                  static_cast<double>(pieces_);
    }
    snap.mean_progress = progress / static_cast<double>(n_ - 1);
    snap.transferred_kb = tick_transferred_;
    return snap;
  }

  /// Leechers that have not completed yet (arrived or still to arrive).
  [[nodiscard]] std::size_t incomplete_leechers() const {
    std::size_t count = 0;
    for (std::size_t i = 1; i < n_; ++i) {
      if (have_count_[i] < pieces_) ++count;
    }
    return count;
  }

  [[nodiscard]] bool is_complete(std::size_t i) const {
    return have_count_[i] == pieces_;
  }

  /// j wants data at all (and i has at least one piece). The exact
  /// "i has something j lacks" check happens at piece assignment; a lane
  /// that cannot be fed simply idles.
  [[nodiscard]] bool interested_in(std::size_t i, std::size_t j) const {
    return j != i && active_[j] && !is_complete(j) && have_count_[i] > 0;
  }

  // --- choke rounds ------------------------------------------------------

  void rechoke() {
    DSA_OBS_PHASE("swarm/choke");
    // Fresh random ranking tie-breaks each choke round; a fixed order would
    // funnel every all-zero-tied choice onto the same peers.
    for (auto& priority : tie_priority_) {
      priority = static_cast<std::uint32_t>(rng_());
    }
    // Window roll + loyalty streak update (one choke period granularity).
    recv_prev_.swap(recv_cur_);
    std::fill(recv_cur_.begin(), recv_cur_.end(), 0.0);
    for (std::size_t idx = 0; idx < n_ * n_; ++idx) {
      streak_[idx] = recv_prev_[idx] > 0.0 ? streak_[idx] + 1 : 0;
    }
    observe_peer_utilization();

    for (std::size_t i = 0; i < n_; ++i) {
      if (!active_[i]) continue;
      if (i == 0) {
        rechoke_seeder();
      } else if (!is_complete(i)) {
        rechoke_leecher(i);
      }
    }

    // Release in-flight assignments on pairs that are no longer unchoked so
    // a choked-off piece can be re-claimed from another sender.
    for (std::size_t sender = 0; sender < n_; ++sender) {
      for (std::size_t receiver = 0; receiver < n_; ++receiver) {
        const std::int32_t piece = piece_from_[receiver * n_ + sender];
        if (piece == kNoPiece) continue;
        if (!is_unchoked(sender, receiver)) {
          release_assignment(receiver, sender);
        }
      }
    }
  }

  [[nodiscard]] bool is_unchoked(std::size_t sender,
                                 std::size_t receiver) const {
    if (optimistic_[sender] == static_cast<std::int32_t>(receiver)) {
      return true;
    }
    const auto& list = unchoked_[sender];
    return std::find(list.begin(), list.end(),
                     static_cast<std::uint32_t>(receiver)) != list.end();
  }

  void release_assignment(std::size_t receiver, std::size_t sender) {
    const std::int32_t piece = piece_from_[receiver * n_ + sender];
    if (piece == kNoPiece) return;
    // Progress on the piece persists (block-level download, as in BT):
    // another sender can pick it up and continue where this one stopped.
    claimed_[receiver * pieces_ + static_cast<std::size_t>(piece)] = 0;
    piece_from_[receiver * n_ + sender] = kNoPiece;
  }

  void rechoke_seeder() {
    // Uniform round-robin over interested leechers (the paper's seeder
    // assumption, after Chow et al.).
    unchoked_[0].clear();
    if (n_ <= 1) return;
    std::size_t scanned = 0;
    while (unchoked_[0].size() < config_.seeder_slots && scanned < n_ - 1) {
      seeder_rr_ = seeder_rr_ % (n_ - 1) + 1;  // cycles 1..n-1
      ++scanned;
      if (interested_in(0, seeder_rr_)) {
        unchoked_[0].push_back(static_cast<std::uint32_t>(seeder_rr_));
      }
    }
  }

  void rechoke_leecher(std::size_t i) {
    candidates_.clear();
    for (std::size_t j = 1; j < n_; ++j) {
      if (interested_in(i, j)) {
        candidates_.push_back(static_cast<std::uint32_t>(j));
      }
    }

    const ClientVariant variant = variant_[i];
    const std::size_t slots = variant == ClientVariant::kSortSlowest
                                  ? 1
                                  : config_.regular_slots;
    const std::size_t picked = std::min(slots, candidates_.size());
    rank_candidates(i, variant, picked);
    const bool observe = obs::enabled() && picked > 0;
    if (observe) prev_unchoked_ = unchoked_[i];
    unchoked_[i].assign(candidates_.begin(), candidates_.begin() + picked);
    if (observe) observe_switch_rate(unchoked_[i]);

    update_optimistic(i, variant, slots);

    if (record_full_tick_) {
      for (std::uint32_t peer : unchoked_[i]) {
        capture_.emit({.kind = obs::EventKind::kChoke,
                       .run = config_.seed,
                       .time = tick_,
                       .actor = static_cast<std::uint32_t>(i),
                       .peer = peer,
                       .value = {{1.0, 0.0, 0.0, 0.0}}});
      }
      if (optimistic_[i] >= 0) {
        capture_.emit({.kind = obs::EventKind::kChoke,
                       .run = config_.seed,
                       .time = tick_,
                       .actor = static_cast<std::uint32_t>(i),
                       .peer = static_cast<std::uint32_t>(optimistic_[i]),
                       .value = {{2.0, 0.0, 0.0, 0.0}}});
      }
    }
  }

  void rank_candidates(std::size_t i, ClientVariant variant,
                       std::size_t top) {
    if (top == 0) return;
    auto by_key = [&](auto key, bool descending) {
      std::partial_sort(candidates_.begin(), candidates_.begin() + top,
                        candidates_.end(),
                        [&, descending](std::uint32_t a, std::uint32_t b) {
                          const double ka = key(a);
                          const double kb = key(b);
                          if (ka != kb) return descending ? ka > kb : ka < kb;
                          if (tie_priority_[a] != tie_priority_[b]) {
                            return tie_priority_[a] < tie_priority_[b];
                          }
                          return a < b;
                        });
    };
    switch (variant) {
      case ClientVariant::kBitTorrent:
        by_key([&](std::uint32_t j) { return recv_prev_[i * n_ + j]; }, true);
        break;
      case ClientVariant::kSortSlowest:
        by_key([&](std::uint32_t j) { return recv_prev_[i * n_ + j]; }, false);
        break;
      case ClientVariant::kBirds:
        by_key(
            [&](std::uint32_t j) {
              return std::fabs(capacity_[j] - capacity_[i]);
            },
            false);
        break;
      case ClientVariant::kLoyalWhenNeeded:
        by_key(
            [&](std::uint32_t j) {
              return static_cast<double>(streak_[i * n_ + j]);
            },
            true);
        break;
      case ClientVariant::kRandomRank:
        for (std::size_t s = 0; s < top; ++s) {
          const std::size_t j =
              s + static_cast<std::size_t>(rng_.below(candidates_.size() - s));
          std::swap(candidates_[s], candidates_[j]);
        }
        break;
    }
  }

  void update_optimistic(std::size_t i, ClientVariant variant,
                         std::size_t slots) {
    // Sort-S defects on strangers: never an optimistic slot.
    if (variant == ClientVariant::kSortSlowest) {
      optimistic_[i] = kNoPeer;
      return;
    }
    // Loyal-When-needed only opens the stranger slot while it lacks
    // established (positive-streak) partners.
    if (variant == ClientVariant::kLoyalWhenNeeded) {
      std::size_t established = 0;
      for (std::uint32_t j : unchoked_[i]) {
        if (streak_[i * n_ + j] > 0) ++established;
      }
      if (established >= slots) {
        optimistic_[i] = kNoPeer;
        return;
      }
    }

    const std::int32_t current = optimistic_[i];
    const bool current_valid =
        current != kNoPeer &&
        interested_in(i, static_cast<std::size_t>(current)) &&
        std::find(unchoked_[i].begin(), unchoked_[i].end(),
                  static_cast<std::uint32_t>(current)) == unchoked_[i].end();
    const bool due_for_rotation =
        ++rechokes_since_rotation_[i] >= config_.optimistic_period;
    if (current_valid && !due_for_rotation) return;

    rechokes_since_rotation_[i] = 0;
    // Candidates for the optimistic slot: interested peers outside the
    // regular set.
    scratch_.clear();
    for (std::uint32_t j : candidates_) {
      if (std::find(unchoked_[i].begin(), unchoked_[i].end(), j) ==
          unchoked_[i].end()) {
        scratch_.push_back(j);
      }
    }
    optimistic_[i] =
        scratch_.empty()
            ? kNoPeer
            : static_cast<std::int32_t>(
                  scratch_[static_cast<std::size_t>(rng_.below(scratch_.size()))]);
  }

  // --- transfers ----------------------------------------------------------

  void transfer(std::size_t tick) {
    DSA_OBS_PHASE("swarm/transfer");
    for (std::size_t sender = 0; sender < n_; ++sender) {
      if (!active_[sender] || have_count_[sender] == 0) continue;

      // Feedable targets: unchoked, active, and with an assignable piece.
      targets_.clear();
      auto consider = [&](std::size_t receiver) {
        if (!active_[receiver] || is_complete(receiver)) return;
        if (ensure_assignment(receiver, sender, tick)) {
          targets_.push_back(static_cast<std::uint32_t>(receiver));
        }
      };
      for (std::uint32_t receiver : unchoked_[sender]) consider(receiver);
      if (optimistic_[sender] != kNoPeer) {
        consider(static_cast<std::size_t>(optimistic_[sender]));
      }
      if (targets_.empty()) continue;

      const double rate =
          capacity_[sender] / static_cast<double>(targets_.size());
      for (std::uint32_t receiver : targets_) {
        deliver(sender, receiver, rate, tick);
      }
    }
  }

  /// Guarantees an in-flight piece from sender to receiver, choosing the
  /// rarest assignable piece (random tie-break). Returns false when nothing
  /// is assignable or the pair is serving a timeout backoff.
  bool ensure_assignment(std::size_t receiver, std::size_t sender,
                         std::size_t tick) {
    if (piece_from_[receiver * n_ + sender] != kNoPiece) return true;
    if (plan_.piece_timeout_ticks > 0 &&
        tick < blocked_until_[receiver * n_ + sender]) {
      return false;
    }
    std::size_t best = pieces_;
    std::uint32_t best_availability = 0;
    std::size_t tie_count = 0;
    const std::size_t offset = static_cast<std::size_t>(rng_.below(pieces_));
    for (std::size_t raw = 0; raw < pieces_; ++raw) {
      const std::size_t p = (raw + offset) % pieces_;
      if (!have_[sender * pieces_ + p] || have_[receiver * pieces_ + p] ||
          claimed_[receiver * pieces_ + p]) {
        continue;
      }
      if (best == pieces_ || availability_[p] < best_availability) {
        best = p;
        best_availability = availability_[p];
        tie_count = 1;
      }
    }
    if (best == pieces_) return false;
    (void)tie_count;
    claimed_[receiver * pieces_ + best] = 1;
    piece_from_[receiver * n_ + sender] = static_cast<std::int32_t>(best);
    if (plan_.piece_timeout_ticks > 0) {
      last_progress_[receiver * n_ + sender] = tick;
    }
    return true;
  }

  void deliver(std::size_t sender, std::size_t receiver, double rate_kbps,
               std::size_t tick) {
    // Message loss eats this tick's delivery on the link: the bytes
    // evaporate, crediting neither side and advancing no piece.
    if (plan_.message_loss > 0.0 && fault_rng_.chance(plan_.message_loss)) {
      ++stats_.messages_lost;
      stats_.lost_kb += rate_kbps;
      return;
    }
    if (sender == 0 && awaiting_recovery_) {
      recovery_total_ += static_cast<double>(tick - recovery_start_);
      ++recoveries_;
      awaiting_recovery_ = false;
    }
    uploaded_[sender] += rate_kbps;
    downloaded_[receiver] += rate_kbps;
    tick_transferred_ += rate_kbps;
    recv_cur_[receiver * n_ + sender] += rate_kbps;
    if (plan_.piece_timeout_ticks > 0) {
      last_progress_[receiver * n_ + sender] = tick;
    }
    const auto piece =
        static_cast<std::size_t>(piece_from_[receiver * n_ + sender]);
    double& done = bytes_done_[receiver * pieces_ + piece];
    done += rate_kbps;  // one tick = one second
    if (done + 1e-9 < config_.piece_size_kb) return;

    have_[receiver * pieces_ + piece] = 1;
    ++have_count_[receiver];
    ++availability_[piece];
    observe_progress(receiver);
    if (record_full_tick_) {
      capture_.emit({.kind = obs::EventKind::kPiece,
                     .run = config_.seed,
                     .time = static_cast<std::uint32_t>(tick),
                     .actor = static_cast<std::uint32_t>(receiver),
                     .peer = static_cast<std::uint32_t>(sender),
                     .value = {{static_cast<double>(piece),
                                static_cast<double>(have_count_[receiver]), 0.0,
                                0.0}}});
    }
    piece_from_[receiver * n_ + sender] = kNoPiece;
    done = 0.0;
    // A completed piece proves the link healthy again.
    backoff_[receiver * n_ + sender] = plan_.retry_backoff_ticks;

    if (is_complete(receiver)) {
      completion_tick_[receiver] = static_cast<std::int64_t>(tick) + 1;
      departing_.push_back(static_cast<std::uint32_t>(receiver));
    }
  }

  void process_departures() {
    for (std::uint32_t peer : departing_) {
      active_[peer] = 0;
      // Its pieces leave the swarm.
      for (std::size_t p = 0; p < pieces_; ++p) {
        if (have_[peer * pieces_ + p]) --availability_[p];
      }
      // Free pieces other peers were downloading from it.
      for (std::size_t receiver = 0; receiver < n_; ++receiver) {
        release_assignment(receiver, peer);
      }
      unchoked_[peer].clear();
      optimistic_[peer] = kNoPeer;
    }
    departing_.clear();
  }

  const SwarmConfig& config_;
  const fault::FaultPlan& plan_;
  const std::size_t n_;
  const std::size_t pieces_;
  util::Rng rng_;
  util::Rng fault_rng_;

  std::vector<ClientVariant> variant_;
  std::vector<double> capacity_;
  std::vector<std::uint8_t> have_;          // [peer * pieces + p]
  std::vector<std::size_t> have_count_;
  std::vector<std::uint8_t> active_;
  std::vector<std::int64_t> completion_tick_;
  std::vector<std::uint32_t> availability_;  // active holders per piece
  std::vector<std::uint8_t> claimed_;        // [receiver * pieces + p]
  std::vector<std::int32_t> piece_from_;     // [receiver * n + sender]
  std::vector<double> bytes_done_;           // [receiver * pieces + p], KB
  std::vector<double> recv_cur_, recv_prev_;  // [receiver * n + sender], KB
  std::vector<std::uint32_t> streak_;        // choke periods of cooperation
  std::vector<std::vector<std::uint32_t>> unchoked_;
  std::vector<std::int32_t> optimistic_;
  std::vector<std::size_t> rechokes_since_rotation_;
  std::vector<std::uint32_t> tie_priority_;
  std::vector<std::int64_t> arrival_tick_;
  std::vector<double> uploaded_, downloaded_;
  double tick_transferred_ = 0.0;
  std::size_t seeder_rr_ = 0;

  // Fault state.
  std::vector<std::int64_t> crashed_until_;   // rejoin tick; -1 = not crashed
  std::vector<std::size_t> last_progress_;    // [receiver * n + sender]
  std::vector<std::size_t> blocked_until_;    // [receiver * n + sender]
  std::vector<std::size_t> backoff_;          // [receiver * n + sender]
  std::vector<fault::CrashEvent> crash_schedule_;  // sorted by tick
  std::size_t next_crash_ = 0;
  bool seeder_out_ = false;
  bool awaiting_recovery_ = false;
  std::size_t recovery_start_ = 0;
  std::size_t down_since_ = 0;
  double recovery_total_ = 0.0;
  std::size_t recoveries_ = 0;
  FaultStats stats_;

  // Scratch.
  std::vector<std::uint32_t> candidates_;
  std::vector<std::uint32_t> scratch_;
  std::vector<std::uint32_t> targets_;
  std::vector<std::uint32_t> departing_;
  // Previous-round unchoke list, captured only while obs::enabled() so the
  // switch-rate sketch can diff against it. Never read by the simulation.
  std::vector<std::uint32_t> prev_unchoked_;

  // Flight recorder: level/stride latched at construction, events buffered
  // locally and flushed once when the engine dies. Never touches rng_ or
  // fault_rng_.
  obs::RunCapture capture_{obs::Recorder::global()};
  std::uint32_t tick_ = 0;
  bool record_full_tick_ = false;
};

}  // namespace

SwarmResult run_swarm(const std::vector<ClientVariant>& leechers,
                      const std::vector<double>& capacities,
                      const SwarmConfig& config) {
  if (leechers.empty() || leechers.size() != capacities.size()) {
    throw std::invalid_argument(
        "run_swarm: leechers/capacities must be equal-length and non-empty");
  }
  for (double c : capacities) {
    if (!(c > 0.0)) {
      throw std::invalid_argument("run_swarm: capacities must be positive");
    }
  }
  config.validate(leechers.size());
  SwarmEngine engine(leechers, capacities, config);
  return engine.run();
}

SwarmResult run_mixed_swarm(ClientVariant a, ClientVariant b,
                            std::size_t count_a, std::size_t total,
                            const SwarmConfig& config) {
  if (total == 0 || count_a > total) {
    throw std::invalid_argument("run_mixed_swarm: bad group sizes");
  }
  std::vector<ClientVariant> leechers;
  leechers.reserve(total);
  leechers.insert(leechers.end(), count_a, a);
  leechers.insert(leechers.end(), total - count_a, b);

  std::vector<double> capacities =
      swarming::BandwidthDistribution::piatek().stratified_sample(total);
  util::Rng rng(util::hash64(config.seed ^ 0x5b8f9a3c2d1e4f07ULL));
  rng.shuffle(capacities);

  {
    obs::RunCapture capture(obs::Recorder::global());
    if (capture.rounds()) {
      capture.emit({.kind = obs::EventKind::kMixedSwarm,
                    .run = config.seed,
                    .value = {{static_cast<double>(count_a),
                               static_cast<double>(total),
                               static_cast<double>(config.max_ticks), 0.0}},
                    .label = to_string(a) + "|" + to_string(b),
                    .detail = capture.context()});
    }
  }

  return run_swarm(leechers, capacities, config);
}

}  // namespace dsa::swarm
