// Histograms and empirical distribution tools backing Figures 2-5:
// - Histogram1D: marginal histograms of Performance / Robustness (Fig. 2).
// - FrequencyGrid: the "darker squares" maps of Figures 3 and 4
//   (metric interval x partner count, shaded by relative frequency).
// - Ccdf: complementary CDF curves of Figure 5.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace dsa::stats {

/// Fixed-width histogram over [lo, hi]; values outside are clamped into the
/// boundary bins, matching how the paper buckets normalized [0,1] metrics.
class Histogram1D {
 public:
  /// Throws std::invalid_argument if bins == 0 or lo >= hi.
  Histogram1D(std::size_t bins, double lo, double hi);

  void add(double value);
  void add_all(std::span<const double> values);

  [[nodiscard]] std::size_t bin_count() const noexcept {
    return counts_.size();
  }
  [[nodiscard]] std::size_t count(std::size_t bin) const {
    return counts_.at(bin);
  }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }

  /// [lower, upper) edges of a bin (last bin is closed above).
  [[nodiscard]] double bin_lower(std::size_t bin) const;
  [[nodiscard]] double bin_upper(std::size_t bin) const;

  /// Index of the bin holding `value` (after clamping).
  [[nodiscard]] std::size_t bin_of(double value) const;

  /// count(bin) / total, or 0 when empty.
  [[nodiscard]] double fraction(std::size_t bin) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// 2-D frequency grid: rows are metric intervals (e.g. Robustness deciles),
/// columns are integer categories (e.g. partner count 0..9). Figures 3 and 4
/// shade each row by within-row relative frequency; row_relative_frequency
/// reproduces exactly that shading.
class FrequencyGrid {
 public:
  /// Rows bucket `metric` into `rows` equal intervals of [0, 1]; columns are
  /// integers in [0, columns). Throws std::invalid_argument on zero sizes.
  FrequencyGrid(std::size_t rows, std::size_t columns);

  /// Records one protocol with metric value in [0, 1] and category `column`.
  /// Throws std::out_of_range for a column outside the grid.
  void add(double metric, std::size_t column);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t columns() const noexcept { return columns_; }
  [[nodiscard]] std::size_t count(std::size_t row, std::size_t column) const;
  [[nodiscard]] std::size_t row_total(std::size_t row) const;

  /// count / row_total, or 0 for an empty row — the darkness of a square.
  [[nodiscard]] double row_relative_frequency(std::size_t row,
                                              std::size_t column) const;

  /// [lower, upper) metric interval covered by a row.
  [[nodiscard]] double row_lower(std::size_t row) const;
  [[nodiscard]] double row_upper(std::size_t row) const;

 private:
  std::size_t rows_, columns_;
  std::vector<std::size_t> counts_;  // row-major
};

/// Empirical complementary CDF: P(X > x) evaluated at sorted sample points.
class Ccdf {
 public:
  /// Builds from a sample; throws std::invalid_argument when empty.
  explicit Ccdf(std::span<const double> sample);

  /// P(X > x) under the empirical distribution.
  [[nodiscard]] double at(double x) const;

  /// Evaluates the CCDF at `points` evenly spaced x values across [lo, hi],
  /// returning (x, P(X > x)) pairs — one plottable series of Figure 5.
  [[nodiscard]] std::vector<std::pair<double, double>> series(
      double lo, double hi, std::size_t points) const;

 private:
  std::vector<double> sorted_;
};

}  // namespace dsa::stats
