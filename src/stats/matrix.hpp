// Small dense row-major matrix with just the linear algebra OLS needs:
// products, transpose, and a partial-pivot Gaussian solver / inverse.
// Design-space regressions are tiny (13 coefficients), so clarity beats
// cleverness here.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace dsa::stats {

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;

  /// rows x cols matrix of zeros.
  Matrix(std::size_t rows, std::size_t cols);

  /// Builds from nested initializer-style data; throws std::invalid_argument
  /// on ragged input.
  static Matrix from_rows(const std::vector<std::vector<double>>& rows);

  /// Identity matrix of size n.
  static Matrix identity(std::size_t n);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  double& at(std::size_t r, std::size_t c);
  [[nodiscard]] double at(std::size_t r, std::size_t c) const;

  [[nodiscard]] Matrix transposed() const;

  /// Matrix product; throws std::invalid_argument on shape mismatch.
  [[nodiscard]] Matrix operator*(const Matrix& rhs) const;

  /// Solves (*this) * x = b for square *this via Gaussian elimination with
  /// partial pivoting. Throws std::invalid_argument on shape mismatch and
  /// std::runtime_error when singular (pivot below 1e-12).
  [[nodiscard]] std::vector<double> solve(std::span<const double> b) const;

  /// Inverse of a square matrix; same error conditions as solve().
  [[nodiscard]] Matrix inverted() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace dsa::stats
