// Correlation measures. The paper reports Pearson's correlation between
// Robustness and Aggressiveness (rho ~= 0.96, Fig. 8) and between 50-50 and
// 90-10 robustness scores (rho ~= 0.97, Sec. 4.3.2).
#pragma once

#include <span>

namespace dsa::stats {

/// Pearson product-moment correlation coefficient. Throws
/// std::invalid_argument when the spans differ in length or have < 2
/// elements; returns 0 when either sample is constant.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Spearman rank correlation (Pearson over average ranks). Same
/// preconditions as pearson(). Used in sanity checks where monotone
/// association matters more than linearity.
double spearman(std::span<const double> xs, std::span<const double> ys);

}  // namespace dsa::stats
