#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dsa::stats {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double sum_sq = 0.0;
  for (double x : xs) sum_sq += (x - m) * (x - m);
  return sum_sq / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double min_value(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

double max_value(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

double percentile(std::span<const double> xs, double q) {
  if (xs.empty()) throw std::invalid_argument("percentile: empty sample");
  if (q < 0.0 || q > 1.0) {
    throw std::invalid_argument("percentile: q outside [0, 1]");
  }
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double position = q * static_cast<double>(sorted.size() - 1);
  const auto lower = static_cast<std::size_t>(position);
  const std::size_t upper = std::min(lower + 1, sorted.size() - 1);
  const double weight = position - static_cast<double>(lower);
  return sorted[lower] * (1.0 - weight) + sorted[upper] * weight;
}

std::vector<double> min_max_normalize(std::span<const double> xs) {
  std::vector<double> out(xs.size(), 0.0);
  if (xs.empty()) return out;
  const double lo = min_value(xs);
  const double hi = max_value(xs);
  const double range = hi - lo;
  if (range <= 0.0) return out;
  for (std::size_t i = 0; i < xs.size(); ++i) out[i] = (xs[i] - lo) / range;
  return out;
}

std::vector<double> standardize(std::span<const double> xs) {
  std::vector<double> out(xs.size(), 0.0);
  if (xs.empty()) return out;
  const double m = mean(xs);
  const double s = stddev(xs);
  if (s <= 0.0) return out;
  for (std::size_t i = 0; i < xs.size(); ++i) out[i] = (xs[i] - m) / s;
  return out;
}

double ci95_half_width(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  return 1.96 * stddev(xs) / std::sqrt(static_cast<double>(xs.size()));
}

}  // namespace dsa::stats
