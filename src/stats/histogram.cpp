#include "stats/histogram.hpp"

#include <algorithm>
#include <stdexcept>

namespace dsa::stats {

Histogram1D::Histogram1D(std::size_t bins, double lo, double hi)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (bins == 0) throw std::invalid_argument("Histogram1D: bins == 0");
  if (!(lo < hi)) throw std::invalid_argument("Histogram1D: lo >= hi");
}

void Histogram1D::add(double value) {
  ++counts_[bin_of(value)];
  ++total_;
}

void Histogram1D::add_all(std::span<const double> values) {
  for (double v : values) add(v);
}

double Histogram1D::bin_lower(std::size_t bin) const {
  if (bin >= counts_.size()) throw std::out_of_range("Histogram1D: bin");
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bin);
}

double Histogram1D::bin_upper(std::size_t bin) const {
  if (bin >= counts_.size()) throw std::out_of_range("Histogram1D: bin");
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bin + 1);
}

std::size_t Histogram1D::bin_of(double value) const {
  const double clamped = std::clamp(value, lo_, hi_);
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto bin = static_cast<std::size_t>((clamped - lo_) / width);
  return std::min(bin, counts_.size() - 1);
}

double Histogram1D::fraction(std::size_t bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count(bin)) / static_cast<double>(total_);
}

FrequencyGrid::FrequencyGrid(std::size_t rows, std::size_t columns)
    : rows_(rows), columns_(columns), counts_(rows * columns, 0) {
  if (rows == 0 || columns == 0) {
    throw std::invalid_argument("FrequencyGrid: zero dimension");
  }
}

void FrequencyGrid::add(double metric, std::size_t column) {
  if (column >= columns_) throw std::out_of_range("FrequencyGrid: column");
  const double clamped = std::clamp(metric, 0.0, 1.0);
  auto row = static_cast<std::size_t>(clamped * static_cast<double>(rows_));
  row = std::min(row, rows_ - 1);
  ++counts_[row * columns_ + column];
}

std::size_t FrequencyGrid::count(std::size_t row, std::size_t column) const {
  if (row >= rows_ || column >= columns_) {
    throw std::out_of_range("FrequencyGrid: index");
  }
  return counts_[row * columns_ + column];
}

std::size_t FrequencyGrid::row_total(std::size_t row) const {
  if (row >= rows_) throw std::out_of_range("FrequencyGrid: row");
  std::size_t total = 0;
  for (std::size_t c = 0; c < columns_; ++c) total += counts_[row * columns_ + c];
  return total;
}

double FrequencyGrid::row_relative_frequency(std::size_t row,
                                             std::size_t column) const {
  const std::size_t total = row_total(row);
  if (total == 0) return 0.0;
  return static_cast<double>(count(row, column)) / static_cast<double>(total);
}

double FrequencyGrid::row_lower(std::size_t row) const {
  if (row >= rows_) throw std::out_of_range("FrequencyGrid: row");
  return static_cast<double>(row) / static_cast<double>(rows_);
}

double FrequencyGrid::row_upper(std::size_t row) const {
  if (row >= rows_) throw std::out_of_range("FrequencyGrid: row");
  return static_cast<double>(row + 1) / static_cast<double>(rows_);
}

Ccdf::Ccdf(std::span<const double> sample)
    : sorted_(sample.begin(), sample.end()) {
  if (sorted_.empty()) throw std::invalid_argument("Ccdf: empty sample");
  std::sort(sorted_.begin(), sorted_.end());
}

double Ccdf::at(double x) const {
  const auto first_above =
      std::upper_bound(sorted_.begin(), sorted_.end(), x);
  const auto above = static_cast<double>(sorted_.end() - first_above);
  return above / static_cast<double>(sorted_.size());
}

std::vector<std::pair<double, double>> Ccdf::series(double lo, double hi,
                                                    std::size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (points == 0) return out;
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double x =
        points == 1
            ? lo
            : lo + (hi - lo) * static_cast<double>(i) /
                       static_cast<double>(points - 1);
    out.emplace_back(x, at(x));
  }
  return out;
}

}  // namespace dsa::stats
