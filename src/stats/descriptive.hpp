// Descriptive statistics over samples of doubles: means, variances,
// percentiles, min-max normalization, confidence intervals. These are the
// primitives behind every PRA metric and the error bars of Figures 9 and 10.
#pragma once

#include <span>
#include <vector>

namespace dsa::stats {

/// Arithmetic mean; 0 for an empty sample.
double mean(std::span<const double> xs);

/// Unbiased sample variance (n-1 denominator); 0 for n < 2.
double variance(std::span<const double> xs);

/// Sample standard deviation; 0 for n < 2.
double stddev(std::span<const double> xs);

/// Population minimum / maximum; both 0 for an empty sample.
double min_value(std::span<const double> xs);
double max_value(std::span<const double> xs);

/// Linear-interpolated percentile, q in [0, 1]. Throws std::invalid_argument
/// on an empty sample or q outside [0, 1].
double percentile(std::span<const double> xs, double q);

/// Maps xs into [0, 1] by (x - min) / (max - min); all-equal samples map
/// to 0. Used to normalize Performance over the design space.
std::vector<double> min_max_normalize(std::span<const double> xs);

/// Standardizes xs to zero mean, unit (sample) standard deviation; all-equal
/// samples map to zeros. Used for Table 3's standardized regressors.
std::vector<double> standardize(std::span<const double> xs);

/// Half-width of the normal-approximation 95% confidence interval of the
/// sample mean: 1.96 * s / sqrt(n); 0 for n < 2. The paper's Figures 9-10
/// mark 95% confidence intervals over >= 10 runs.
double ci95_half_width(std::span<const double> xs);

}  // namespace dsa::stats
