#include "stats/regression.hpp"

#include <cmath>
#include <stdexcept>

namespace dsa::stats {

double two_sided_normal_p(double z) {
  // 2 * (1 - Phi(|z|)) = erfc(|z| / sqrt(2)).
  return std::erfc(std::fabs(z) / std::sqrt(2.0));
}

double OlsFit::predict(std::span<const double> regressors) const {
  const std::size_t offset = has_intercept_ ? 1 : 0;
  if (regressors.size() + offset != coefficients.size()) {
    throw std::invalid_argument("OlsFit::predict: width mismatch");
  }
  double y = has_intercept_ ? coefficients.front().estimate : 0.0;
  for (std::size_t i = 0; i < regressors.size(); ++i) {
    y += coefficients[i + offset].estimate * regressors[i];
  }
  return y;
}

const Coefficient& OlsFit::coefficient(const std::string& name) const {
  for (const auto& c : coefficients) {
    if (c.name == name) return c;
  }
  throw std::out_of_range("OlsFit: no coefficient named '" + name + "'");
}

OlsModel::OlsModel(std::vector<std::string> regressor_names,
                   bool include_intercept)
    : names_(std::move(regressor_names)), intercept_(include_intercept) {}

void OlsModel::add(std::span<const double> regressors, double response) {
  if (regressors.size() != names_.size()) {
    throw std::invalid_argument("OlsModel::add: width mismatch");
  }
  rows_.emplace_back(regressors.begin(), regressors.end());
  responses_.push_back(response);
}

OlsFit OlsModel::fit() const {
  const std::size_t n = responses_.size();
  const std::size_t p = names_.size() + (intercept_ ? 1 : 0);
  if (n <= p) {
    throw std::runtime_error("OlsModel::fit: need more observations (" +
                             std::to_string(n) + ") than parameters (" +
                             std::to_string(p) + ")");
  }

  // Design matrix with optional leading intercept column.
  Matrix x(n, p);
  for (std::size_t r = 0; r < n; ++r) {
    std::size_t c = 0;
    if (intercept_) x.at(r, c++) = 1.0;
    for (double value : rows_[r]) x.at(r, c++) = value;
  }

  const Matrix xt = x.transposed();
  const Matrix xtx = xt * x;

  // X^T y
  std::vector<double> xty(p, 0.0);
  for (std::size_t c = 0; c < p; ++c) {
    double sum = 0.0;
    for (std::size_t r = 0; r < n; ++r) sum += x.at(r, c) * responses_[r];
    xty[c] = sum;
  }

  std::vector<double> beta;
  Matrix xtx_inverse;
  try {
    beta = xtx.solve(xty);
    xtx_inverse = xtx.inverted();
  } catch (const std::runtime_error&) {
    throw std::runtime_error(
        "OlsModel::fit: design matrix is rank deficient (collinear "
        "regressors)");
  }

  // Residual sum of squares and total sum of squares.
  double rss = 0.0;
  double response_mean = 0.0;
  for (double y : responses_) response_mean += y;
  response_mean /= static_cast<double>(n);
  double tss = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    double fitted = 0.0;
    for (std::size_t c = 0; c < p; ++c) fitted += x.at(r, c) * beta[c];
    const double residual = responses_[r] - fitted;
    rss += residual * residual;
    const double centered = responses_[r] - response_mean;
    tss += centered * centered;
  }

  const double dof = static_cast<double>(n - p);
  const double sigma2 = rss / dof;

  OlsFit result;
  result.has_intercept_ = intercept_;
  result.observations = n;
  result.residual_std_error = std::sqrt(sigma2);
  result.r_squared = tss > 0.0 ? 1.0 - rss / tss : 0.0;
  const double predictors = static_cast<double>(p - (intercept_ ? 1 : 0));
  result.adjusted_r_squared =
      1.0 - (1.0 - result.r_squared) * static_cast<double>(n - 1) /
                (static_cast<double>(n) - predictors - 1.0);

  result.coefficients.reserve(p);
  for (std::size_t c = 0; c < p; ++c) {
    Coefficient coef;
    coef.name = (intercept_ && c == 0) ? "(intercept)"
                                       : names_[c - (intercept_ ? 1 : 0)];
    coef.estimate = beta[c];
    coef.std_error = std::sqrt(sigma2 * xtx_inverse.at(c, c));
    coef.t_value = coef.std_error > 0.0 ? coef.estimate / coef.std_error : 0.0;
    coef.p_value = two_sided_normal_p(coef.t_value);
    result.coefficients.push_back(std::move(coef));
  }
  return result;
}

}  // namespace dsa::stats
