#include "stats/matrix.hpp"

#include <cmath>
#include <span>
#include <stdexcept>

namespace dsa::stats {

namespace {
constexpr double kPivotEpsilon = 1e-12;
}

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix Matrix::from_rows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(rows.size(), rows.front().size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    if (rows[r].size() != m.cols_) {
      throw std::invalid_argument("Matrix::from_rows: ragged input");
    }
    for (std::size_t c = 0; c < m.cols_; ++c) m.at(r, c) = rows[r][c];
  }
  return m;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.at(i, i) = 1.0;
  return m;
}

double& Matrix::at(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  return data_[r * cols_ + c];
}

double Matrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  return data_[r * cols_ + c];
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t.at(c, r) = at(r, c);
  }
  return t;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  if (cols_ != rhs.rows_) {
    throw std::invalid_argument("Matrix::operator*: shape mismatch");
  }
  Matrix out(rows_, rhs.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double lhs_rk = at(r, k);
      if (lhs_rk == 0.0) continue;
      for (std::size_t c = 0; c < rhs.cols_; ++c) {
        out.at(r, c) += lhs_rk * rhs.at(k, c);
      }
    }
  }
  return out;
}

std::vector<double> Matrix::solve(std::span<const double> b) const {
  if (rows_ != cols_) {
    throw std::invalid_argument("Matrix::solve: matrix not square");
  }
  if (b.size() != rows_) {
    throw std::invalid_argument("Matrix::solve: rhs size mismatch");
  }
  const std::size_t n = rows_;
  // Augmented working copies.
  std::vector<double> a(data_);
  std::vector<double> x(b.begin(), b.end());
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::fabs(a[r * n + col]) > std::fabs(a[pivot * n + col])) pivot = r;
    }
    if (std::fabs(a[pivot * n + col]) < kPivotEpsilon) {
      throw std::runtime_error("Matrix::solve: singular matrix");
    }
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(a[col * n + c], a[pivot * n + c]);
      }
      std::swap(x[col], x[pivot]);
    }
    // Eliminate below.
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a[r * n + col] / a[col * n + col];
      if (factor == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) {
        a[r * n + c] -= factor * a[col * n + c];
      }
      x[r] -= factor * x[col];
    }
  }
  // Back substitution.
  for (std::size_t i = n; i-- > 0;) {
    double sum = x[i];
    for (std::size_t c = i + 1; c < n; ++c) sum -= a[i * n + c] * x[c];
    x[i] = sum / a[i * n + i];
  }
  return x;
}

Matrix Matrix::inverted() const {
  if (rows_ != cols_) {
    throw std::invalid_argument("Matrix::inverted: matrix not square");
  }
  const std::size_t n = rows_;
  Matrix inverse(n, n);
  // Solve column by column against unit vectors; n is tiny here.
  std::vector<double> unit(n, 0.0);
  for (std::size_t c = 0; c < n; ++c) {
    unit.assign(n, 0.0);
    unit[c] = 1.0;
    const std::vector<double> column = solve(unit);
    for (std::size_t r = 0; r < n; ++r) inverse.at(r, c) = column[r];
  }
  return inverse;
}

}  // namespace dsa::stats
