#include "stats/correlation.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "stats/descriptive.hpp"

namespace dsa::stats {

namespace {

void check_paired(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size()) {
    throw std::invalid_argument("correlation: length mismatch");
  }
  if (xs.size() < 2) {
    throw std::invalid_argument("correlation: need at least 2 points");
  }
}

/// Average ranks (1-based), ties share the mean of their rank range.
std::vector<double> average_ranks(std::span<const double> xs) {
  const std::size_t n = xs.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&xs](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
  std::vector<double> ranks(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && xs[order[j + 1]] == xs[order[i]]) ++j;
    const double avg_rank = (static_cast<double>(i) + static_cast<double>(j)) /
                                2.0 +
                            1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = avg_rank;
    i = j + 1;
  }
  return ranks;
}

}  // namespace

double pearson(std::span<const double> xs, std::span<const double> ys) {
  check_paired(xs, ys);
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double spearman(std::span<const double> xs, std::span<const double> ys) {
  check_paired(xs, ys);
  const std::vector<double> rx = average_ranks(xs);
  const std::vector<double> ry = average_ranks(ys);
  return pearson(rx, ry);
}

}  // namespace dsa::stats
