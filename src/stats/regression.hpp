// Ordinary-least-squares multiple linear regression with the inference
// outputs Table 3 reports: coefficient estimates, standard errors, t values,
// a significance flag at the 0.001 level, and adjusted R^2. The design-space
// regressions have n ~= 3270 observations, so the normal approximation to the
// t distribution used for p-values is exact for practical purposes.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "stats/matrix.hpp"

namespace dsa::stats {

/// One fitted coefficient with its inference statistics.
struct Coefficient {
  std::string name;
  double estimate = 0.0;
  double std_error = 0.0;
  double t_value = 0.0;
  double p_value = 1.0;

  /// Table 3 marks significance as 'OK' when p < 0.001.
  [[nodiscard]] bool significant_at(double alpha = 0.001) const {
    return p_value < alpha;
  }
};

/// A fitted OLS model.
struct OlsFit {
  std::vector<Coefficient> coefficients;  // intercept first when requested
  double r_squared = 0.0;
  double adjusted_r_squared = 0.0;
  double residual_std_error = 0.0;
  std::size_t observations = 0;

  /// Predicted response for one regressor row (without intercept column;
  /// the intercept is applied automatically when the fit includes one).
  [[nodiscard]] double predict(std::span<const double> regressors) const;

  [[nodiscard]] const Coefficient& coefficient(const std::string& name) const;

 private:
  friend class OlsModel;
  bool has_intercept_ = false;
};

/// Builder for an OLS regression: name the regressors, feed observations,
/// fit.
class OlsModel {
 public:
  /// `regressor_names` excludes the intercept; pass include_intercept=false
  /// for regression through the origin.
  explicit OlsModel(std::vector<std::string> regressor_names,
                    bool include_intercept = true);

  /// Adds one observation; throws std::invalid_argument on width mismatch.
  void add(std::span<const double> regressors, double response);

  [[nodiscard]] std::size_t observation_count() const noexcept {
    return responses_.size();
  }

  /// Fits by solving the normal equations. Throws std::runtime_error when
  /// there are fewer observations than parameters or the design matrix is
  /// rank deficient (collinear dummies).
  [[nodiscard]] OlsFit fit() const;

 private:
  std::vector<std::string> names_;
  bool intercept_;
  std::vector<std::vector<double>> rows_;
  std::vector<double> responses_;
};

/// Two-sided p-value for a z/t statistic under the standard normal
/// distribution: 2 * (1 - Phi(|z|)).
double two_sided_normal_p(double z);

}  // namespace dsa::stats
