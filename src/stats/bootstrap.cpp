#include "stats/bootstrap.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "stats/descriptive.hpp"
#include "util/rng.hpp"

namespace dsa::stats {

namespace {

Interval percentile_interval(std::vector<double>& estimates,
                             double confidence) {
  std::sort(estimates.begin(), estimates.end());
  const double alpha = (1.0 - confidence) / 2.0;
  Interval interval;
  interval.lower = percentile(estimates, alpha);
  interval.upper = percentile(estimates, 1.0 - alpha);
  return interval;
}

void check(std::span<const double> sample, double confidence,
           std::size_t resamples) {
  if (sample.empty()) {
    throw std::invalid_argument("bootstrap: empty sample");
  }
  if (!(confidence > 0.0 && confidence < 1.0)) {
    throw std::invalid_argument("bootstrap: confidence outside (0, 1)");
  }
  if (resamples == 0) {
    throw std::invalid_argument("bootstrap: resamples == 0");
  }
}

}  // namespace

Interval bootstrap_mean_ci(std::span<const double> sample, double confidence,
                           std::size_t resamples, std::uint64_t seed) {
  return bootstrap_statistic_ci(sample, &mean, confidence, resamples, seed);
}

Interval bootstrap_statistic_ci(std::span<const double> sample,
                                double (*statistic)(std::span<const double>),
                                double confidence, std::size_t resamples,
                                std::uint64_t seed) {
  check(sample, confidence, resamples);
  if (statistic == nullptr) {
    throw std::invalid_argument("bootstrap: null statistic");
  }
  util::Rng rng(seed);
  const std::size_t n = sample.size();
  std::vector<double> resample(n);
  std::vector<double> estimates;
  estimates.reserve(resamples);
  for (std::size_t r = 0; r < resamples; ++r) {
    for (std::size_t i = 0; i < n; ++i) {
      resample[i] = sample[rng.below(n)];
    }
    estimates.push_back(statistic(resample));
  }
  return percentile_interval(estimates, confidence);
}

}  // namespace dsa::stats
