// Non-parametric bootstrap confidence intervals. The Fig. 9/10 benches
// report normal-approximation CIs (as the paper does); the bootstrap is the
// distribution-free alternative for the heavy-tailed quantities this domain
// produces (download times, throughput with the Piatek tail).
#pragma once

#include <cstdint>
#include <span>

namespace dsa::stats {

/// A two-sided confidence interval.
struct Interval {
  double lower = 0.0;
  double upper = 0.0;

  [[nodiscard]] bool contains(double value) const {
    return value >= lower && value <= upper;
  }
  [[nodiscard]] double width() const { return upper - lower; }
};

/// Percentile-bootstrap CI for the sample mean. Deterministic in `seed`.
/// Throws std::invalid_argument for empty samples, confidence outside
/// (0, 1), or resamples == 0.
Interval bootstrap_mean_ci(std::span<const double> sample,
                           double confidence = 0.95,
                           std::size_t resamples = 2000,
                           std::uint64_t seed = 1);

/// Percentile-bootstrap CI for an arbitrary statistic supplied as a
/// callable over a resampled vector. Same preconditions.
Interval bootstrap_statistic_ci(std::span<const double> sample,
                                double (*statistic)(std::span<const double>),
                                double confidence = 0.95,
                                std::size_t resamples = 2000,
                                std::uint64_t seed = 1);

}  // namespace dsa::stats
