#include "explore/counterexample.hpp"

#include <sstream>
#include <stdexcept>

#include "fault/fault_json.hpp"
#include "util/fingerprint.hpp"
#include "util/fs.hpp"
#include "util/json.hpp"

namespace dsa::explore {

namespace {

std::size_t as_size(const util::json::Cursor& cursor) {
  const std::int64_t raw = cursor.as_int();
  if (raw < 0) cursor.fail("must be >= 0");
  return static_cast<std::size_t>(raw);
}

}  // namespace

swarm::ClientVariant client_from_name(const std::string& name) {
  using swarm::ClientVariant;
  if (name == "bt") return ClientVariant::kBitTorrent;
  if (name == "birds") return ClientVariant::kBirds;
  if (name == "loyal") return ClientVariant::kLoyalWhenNeeded;
  if (name == "sorts") return ClientVariant::kSortSlowest;
  if (name == "random") return ClientVariant::kRandomRank;
  throw std::invalid_argument("unknown client '" + name +
                              "' (expected bt|birds|loyal|sorts|random)");
}

std::string to_json(const Counterexample& ce) {
  std::ostringstream out;
  out << "{\"type\":\"fault_plan\",\"schema\":1,"
      << fault::fault_plan_json_fields(ce.plan) << ",\"swarm\":{\"a\":\""
      << util::json::escape(ce.a) << "\",\"b\":\"" << util::json::escape(ce.b)
      << "\",\"count_a\":" << ce.count_a << ",\"total\":" << ce.total
      << ",\"seed\":" << ce.seed << ",\"piece_count\":" << ce.piece_count
      << ",\"piece_size_kb\":" << util::exact_number(ce.piece_size_kb)
      << ",\"seeder_capacity_kbps\":"
      << util::exact_number(ce.seeder_capacity_kbps)
      << ",\"max_ticks\":" << ce.max_ticks << "},\"search\":{\"objective\":\""
      << util::json::escape(ce.objective)
      << "\",\"value\":" << util::exact_number(ce.value)
      << ",\"baseline\":" << util::exact_number(ce.baseline)
      << ",\"schedule\":\"" << util::json::escape(ce.schedule) << "\"}}\n";
  return std::move(out).str();
}

Counterexample load_counterexample(const std::filesystem::path& path) {
  const util::json::Value document = util::json::parse_file(path);
  const util::json::Cursor root(document, path.string());
  root.allow_only({"type", "schema", "message_loss", "piece_timeout_ticks",
                   "retry_backoff_ticks", "max_backoff_ticks",
                   "seeder_outages", "crashes", "swarm", "search"});
  if (root.key("type").as_string() != "fault_plan") {
    root.key("type").fail("expected \"fault_plan\"");
  }
  if (root.key("schema").as_int() != 1) {
    root.key("schema").fail("unsupported fault_plan schema (expected 1)");
  }

  Counterexample ce;
  ce.plan = fault::fault_plan_from_json(root);
  if (const auto swarm_block = root.try_key("swarm")) {
    swarm_block->allow_only({"a", "b", "count_a", "total", "seed",
                             "piece_count", "piece_size_kb",
                             "seeder_capacity_kbps", "max_ticks"});
    if (const auto a = swarm_block->try_key("a")) ce.a = a->as_string();
    if (const auto b = swarm_block->try_key("b")) ce.b = b->as_string();
    if (const auto v = swarm_block->try_key("count_a")) ce.count_a = as_size(*v);
    if (const auto v = swarm_block->try_key("total")) ce.total = as_size(*v);
    if (const auto v = swarm_block->try_key("seed")) {
      ce.seed = static_cast<std::uint64_t>(as_size(*v));
    }
    if (const auto v = swarm_block->try_key("piece_count")) {
      ce.piece_count = as_size(*v);
    }
    if (const auto v = swarm_block->try_key("piece_size_kb")) {
      ce.piece_size_kb = v->as_double();
    }
    if (const auto v = swarm_block->try_key("seeder_capacity_kbps")) {
      ce.seeder_capacity_kbps = v->as_double();
    }
    if (const auto v = swarm_block->try_key("max_ticks")) {
      ce.max_ticks = as_size(*v);
    }
  }
  if (const auto search = root.try_key("search")) {
    search->allow_only({"objective", "value", "baseline", "schedule"});
    if (const auto v = search->try_key("objective")) {
      ce.objective = v->as_string();
    }
    if (const auto v = search->try_key("value")) ce.value = v->as_double();
    if (const auto v = search->try_key("baseline")) {
      ce.baseline = v->as_double();
    }
    if (const auto v = search->try_key("schedule")) {
      ce.schedule = v->as_string();
    }
  }

  // Resolve names and cross-field constraints now, so a bad committed file
  // fails at load with a message naming the field, not deep in the engine.
  (void)client_from_name(ce.a);
  if (ce.b != "same") (void)client_from_name(ce.b);
  if (ce.total == 0) {
    throw std::invalid_argument("Counterexample.swarm.total: must be > 0");
  }
  if (ce.count_a > ce.total) {
    throw std::invalid_argument(
        "Counterexample.swarm.count_a: exceeds total");
  }
  swarm_config(ce).validate(ce.total);
  return ce;
}

void save_counterexample(const std::filesystem::path& path,
                         const Counterexample& ce) {
  util::atomic_write(path, to_json(ce));
}

swarm::SwarmConfig swarm_config(const Counterexample& ce) {
  swarm::SwarmConfig config;
  config.piece_count = ce.piece_count;
  config.piece_size_kb = ce.piece_size_kb;
  config.seeder_capacity_kbps = ce.seeder_capacity_kbps;
  config.max_ticks = ce.max_ticks;
  config.seed = ce.seed;
  config.faults = ce.plan;
  return config;
}

swarm::SwarmResult run_counterexample(const Counterexample& ce) {
  const swarm::ClientVariant a = client_from_name(ce.a);
  const swarm::ClientVariant b =
      ce.b == "same" ? a : client_from_name(ce.b);
  return swarm::run_mixed_swarm(a, b, ce.count_a, ce.total, swarm_config(ce));
}

}  // namespace dsa::explore
