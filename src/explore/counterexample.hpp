// Minimal reproducing counterexample: the artifact the explorer leaves
// behind. It bundles a (shrunk) FaultPlan with everything needed to replay
// the exact run that exhibited the worst objective value — the mixed-swarm
// composition, the swarm knobs, the seed — plus search provenance (which
// objective, the value reached, the fault-free baseline for contrast).
//
// The JSON document is a superset of the bare fault-plan format, so one
// loader serves both `dsa_cli swarm --fault-file <bare plan>` and
// `--fault-file <counterexample>`:
//
//   {"type":"fault_plan","schema":1, <fault-plan fields>,
//    "swarm":{"a":"bt","b":"same","count_a":10,"total":20,"seed":500,
//             "piece_count":40,"piece_size_kb":64,
//             "seeder_capacity_kbps":128,"max_ticks":20000},
//    "search":{"objective":"mean_time","value":812.5,"baseline":600.25,
//              "schedule":"crash:l2@81x60"}}
//
// Replay is bitwise: run_counterexample() builds the same SwarmConfig the
// explorer used, so re-running a committed counterexample reproduces the
// recorded value exactly (ReplayIsBitwise test).
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>

#include "fault/fault_plan.hpp"
#include "swarm/swarm_sim.hpp"

namespace dsa::explore {

struct Counterexample {
  fault::FaultPlan plan;

  // Swarm composition and knobs (the explorer's pinned experiment).
  std::string a = "bt";
  std::string b = "same";  ///< "same" = everyone runs `a`
  std::size_t count_a = 10;
  std::size_t total = 20;
  std::uint64_t seed = 500;
  std::size_t piece_count = 40;
  double piece_size_kb = 64.0;
  double seeder_capacity_kbps = 128.0;
  std::size_t max_ticks = 20000;

  // Search provenance.
  std::string objective = "mean_time";
  double value = 0.0;     ///< objective value of the plan
  double baseline = 0.0;  ///< objective value of the fault-free run
  std::string schedule;   ///< explore::describe() form, for humans
};

/// Maps "bt"|"birds"|"loyal"|"sorts"|"random" to a variant; throws
/// std::invalid_argument otherwise (same vocabulary as scenario specs).
[[nodiscard]] swarm::ClientVariant client_from_name(const std::string& name);

/// The newline-terminated JSON document above.
[[nodiscard]] std::string to_json(const Counterexample& ce);

/// Parses either a counterexample or a bare fault-plan document (missing
/// "swarm"/"search" blocks keep their defaults). Strict keys; the embedded
/// plan is validated against the document's own swarm composition.
[[nodiscard]] Counterexample load_counterexample(
    const std::filesystem::path& path);

/// to_json() via util::atomic_write.
void save_counterexample(const std::filesystem::path& path,
                         const Counterexample& ce);

/// The exact SwarmConfig the replay (and the original search) uses.
[[nodiscard]] swarm::SwarmConfig swarm_config(const Counterexample& ce);

/// Replays the counterexample run (run_mixed_swarm with the stored
/// composition, seed, and plan).
[[nodiscard]] swarm::SwarmResult run_counterexample(const Counterexample& ce);

}  // namespace dsa::explore
