// Bounded worst-case search over fault schedules (robustness tooling for the
// Sec. 5 swarm substrate). The design-space message of the paper is that a
// protocol's quality is a property of a *space* of conditions, not of one
// run; this layer applies the same lens to faults: instead of sampling
// FaultSpec intensities, it enumerates every schedule a small fault
// vocabulary can produce and ranks them by how badly they hurt the swarm.
//
// The space is declared as a Domain: a finite set of fault *templates*
// (crash of leecher l for d ticks; seeder outage of length d) and a finite
// grid of candidate start ticks. A Schedule picks a subset of at most
// `max_faults` templates (delta-bounding) and assigns each a start tick.
// The full space therefore has
//
//     sum_{d=0}^{k} C(m, d) * g^d        (m templates, g ticks, k max faults)
//
// schedules — the closed-form oracle the tests check enumeration against.
//
// Enumeration is an iterative-deepening DFS: depth 0 (the fault-free
// baseline) first, then all 1-fault schedules, then 2-fault, ... Every
// schedule has a stable *ordinal* — its position in this fixed order — so
// the space can be chunked into [begin, end) ordinal ranges that different
// workers (or a resumed run) walk independently with bitwise-identical
// results.
//
// Partial-order pruning: two assignments are independent when they strike
// different peers and their tick windows stay disjoint whether or not the
// start ticks are swapped — such a pair commutes through the swarm dynamics,
// so the schedule and its tick-swapped twin explore the same behavior. The
// walker visits only the canonical twin (earlier template index gets the
// earlier tick) and counts the rest as pruned without simulating them;
// visited + pruned always equals the closed-form total.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "fault/fault_plan.hpp"
#include "swarm/swarm_sim.hpp"

namespace dsa::explore {

/// One reusable fault shape. Templates are the alphabet of the search; a
/// schedule instantiates a template by giving it a start tick.
struct FaultTemplate {
  enum class Kind : std::uint8_t { kCrash = 0, kOutage = 1 };

  Kind kind = Kind::kCrash;
  /// Crash target (input-order leecher index); ignored for outages, which
  /// always strike the seeder.
  std::size_t leecher = 0;
  /// Crash downtime / outage window length, in ticks. Must be > 0.
  std::size_t duration = 1;
};

/// Peer footprint of a template: 0 = seeder, leecher l occupies l + 1 —
/// the same indexing the swarm engine (and kFault events) use.
[[nodiscard]] std::size_t footprint_peer(const FaultTemplate& tmpl) noexcept;

/// The declared, finite schedule space.
struct Domain {
  std::vector<FaultTemplate> templates;
  /// Candidate start ticks, strictly ascending.
  std::vector<std::size_t> ticks;
  /// Delta bound: schedules use at most this many simultaneous faults.
  std::size_t max_faults = 2;

  /// Rejects malformed domains with std::invalid_argument naming the field:
  /// no templates, empty or non-ascending tick grid, zero durations, crash
  /// targets outside [0, leecher_count), start ticks at or past `max_ticks`
  /// (when > 0), and spaces larger than kMaxSpace schedules.
  void validate(std::size_t leecher_count, std::size_t max_ticks = 0) const;

  /// Largest schedule space a domain may declare (keeps one exploration an
  /// overnight job, not an open-ended one).
  static constexpr std::uint64_t kMaxSpace = 10'000'000;
};

/// One scheduled fault: templates[tmpl] starting at ticks[tick_index].
struct Assignment {
  std::size_t tmpl = 0;
  std::size_t tick_index = 0;
};

/// A point of the space: assignments with strictly ascending `tmpl` (a
/// template fires at most once per schedule). Empty = fault-free baseline.
using Schedule = std::vector<Assignment>;

/// Closed-form size of the schedule space (the oracle).
[[nodiscard]] std::uint64_t count_space(const Domain& domain);

/// Walk bookkeeping. For any partition of [0, count_space) into ranges,
/// the per-range counts sum to: total == count_space, visited + pruned ==
/// total.
struct SpaceCount {
  std::uint64_t total = 0;    ///< ordinals covered by the walked range
  std::uint64_t visited = 0;  ///< canonical schedules handed to the callback
  std::uint64_t pruned = 0;   ///< order-equivalent twins skipped unsimulated
};

using ScheduleFn =
    std::function<void(std::uint64_t ordinal, const Schedule& schedule)>;

/// Walks ordinals [begin, end) (clamped to the space) in ordinal order,
/// invoking `fn` for every canonical schedule. Deterministic in (domain,
/// begin, end) alone — the chunking/resume primitive.
SpaceCount for_schedules_in(const Domain& domain, std::uint64_t begin,
                            std::uint64_t end, const ScheduleFn& fn);

/// for_schedules_in over the whole space.
SpaceCount for_each_schedule(const Domain& domain, const ScheduleFn& fn);

/// Compact human/CSV form, e.g. "crash:l2@81x60;outage@121x80" (';'-joined,
/// "none" for the empty schedule). Stable — reports and manifests key on it.
[[nodiscard]] std::string describe(const Domain& domain,
                                   const Schedule& schedule);

/// Expands a schedule into a concrete FaultPlan: crashes become CrashEvents,
/// outages become SeederOutage windows (overlapping windows are unioned —
/// the seeder-down predicate is a union anyway), and the ambient loss /
/// timeout knobs ride along on every plan of the exploration.
[[nodiscard]] fault::FaultPlan materialize(const Domain& domain,
                                           const Schedule& schedule,
                                           double message_loss,
                                           std::size_t piece_timeout_ticks);

/// What "worst" means. All objectives are higher-is-worse.
enum class Objective : std::uint8_t {
  kMeanTime = 0,   ///< mean leecher completion time (unfinished = cap)
  kMaxTime = 1,    ///< slowest leecher (unfinished = cap)
  kStallTicks = 2, ///< ticks the swarm moved no bytes while incomplete
};

[[nodiscard]] const char* to_string(Objective objective) noexcept;

/// Parses "mean_time" | "max_time" | "stall_ticks"; throws
/// std::invalid_argument otherwise.
[[nodiscard]] Objective parse_objective(const std::string& text);

/// Scores one run under an objective. `cap_seconds` stands in for leechers
/// that never finished (use the run's max_ticks).
[[nodiscard]] double objective_value(Objective objective,
                                     const swarm::SwarmResult& result,
                                     double cap_seconds);

/// Evaluates a candidate schedule; returns its objective value.
using EvaluateFn = std::function<double(const Schedule& schedule)>;

/// Outcome of shrinking: the (locally) minimal schedule still reaching the
/// target, its value, and how many evaluations the search spent.
struct ShrinkResult {
  Schedule schedule;
  double value = 0.0;
  std::size_t evaluations = 0;
};

/// Delta-debugging-style greedy minimization: repeatedly drop the leftmost
/// single assignment whose removal keeps `evaluate` at or above
/// `target_value`, restarting the scan after every successful drop. The
/// result is 1-minimal — removing any one remaining assignment falls below
/// the target — which is what makes a committed counterexample readable.
ShrinkResult shrink(const Schedule& worst, double target_value,
                    const EvaluateFn& evaluate);

}  // namespace dsa::explore
