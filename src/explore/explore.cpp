#include "explore/explore.hpp"

#include <algorithm>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/profiler.hpp"

namespace dsa::explore {

namespace {

constexpr std::uint64_t kOverflow = std::numeric_limits<std::uint64_t>::max();

std::uint64_t saturating_mul(std::uint64_t a, std::uint64_t b) {
  if (a == 0 || b == 0) return 0;
  if (a > kOverflow / b) return kOverflow;
  return a * b;
}

std::uint64_t saturating_add(std::uint64_t a, std::uint64_t b) {
  return a > kOverflow - b ? kOverflow : a + b;
}

/// Binomial/power tables for the walker's skip arithmetic, saturating at
/// kOverflow (the domain bound rejects any space that large anyway).
struct Tables {
  // binom[n][k] for n in [0, m], k in [0, kmax].
  std::vector<std::vector<std::uint64_t>> binom;
  // gpow[d] = g^d for d in [0, kmax].
  std::vector<std::uint64_t> gpow;

  Tables(std::size_t m, std::size_t g, std::size_t kmax) {
    binom.assign(m + 1, std::vector<std::uint64_t>(kmax + 1, 0));
    for (std::size_t n = 0; n <= m; ++n) {
      binom[n][0] = 1;
      for (std::size_t k = 1; k <= kmax && k <= n; ++k) {
        binom[n][k] = k == n ? 1
                             : saturating_add(binom[n - 1][k - 1],
                                              binom[n - 1][k]);
      }
    }
    gpow.assign(kmax + 1, 1);
    for (std::size_t d = 1; d <= kmax; ++d) {
      gpow[d] = saturating_mul(gpow[d - 1], g);
    }
  }
};

bool windows_overlap(std::size_t a_begin, std::size_t a_len,
                     std::size_t b_begin, std::size_t b_len) {
  return a_begin < b_begin + b_len && b_begin < a_begin + a_len;
}

/// Two instantiated templates commute when they strike different peers and
/// their windows stay disjoint under both tick assignments (the chosen one
/// and the swapped one). Overlapping windows always interact through shared
/// swarm dynamics, so they are never treated as independent.
bool independent(const FaultTemplate& a, std::size_t tick_a,
                 const FaultTemplate& b, std::size_t tick_b) {
  if (footprint_peer(a) == footprint_peer(b)) return false;
  if (windows_overlap(tick_a, a.duration, tick_b, b.duration)) return false;
  if (windows_overlap(tick_b, a.duration, tick_a, b.duration)) return false;
  return true;
}

/// Ordinal-ordered walk of [begin, end) with subtree skipping: whole
/// template/tick blocks strictly before `begin` advance the ordinal without
/// being expanded, and non-canonical blocks are charged to `pruned` without
/// being expanded either.
class Walker {
 public:
  Walker(const Domain& domain, std::uint64_t begin, std::uint64_t end,
         const ScheduleFn& fn)
      : domain_(domain),
        begin_(begin),
        end_(end),
        fn_(fn),
        m_(domain.templates.size()),
        depth_cap_(std::min(domain.max_faults, domain.templates.size())),
        tables_(domain.templates.size(), domain.ticks.size(), depth_cap_) {}

  SpaceCount run() {
    // Depth 0: the fault-free baseline, always canonical, ordinal 0.
    take_block(1, /*canonical=*/true, /*leaf=*/true);
    for (std::size_t depth = 1; depth <= depth_cap_ && ordinal_ < end_;
         ++depth) {
      depth_ = depth;
      choose_slot(0, 0);
    }
    counts_.total = end_ - begin_;
    return counts_;
  }

 private:
  std::uint64_t range_overlap(std::uint64_t len) const {
    const std::uint64_t lo = std::max(ordinal_, begin_);
    const std::uint64_t hi = std::min(saturating_add(ordinal_, len), end_);
    return hi > lo ? hi - lo : 0;
  }

  /// Accounts for a block of `len` consecutive ordinals. A canonical leaf
  /// block (len == 1) invokes the callback when in range; a non-canonical
  /// block is charged to pruned for its in-range part.
  void take_block(std::uint64_t len, bool canonical, bool leaf) {
    if (canonical && leaf) {
      if (ordinal_ >= begin_ && ordinal_ < end_) {
        if (fn_) fn_(ordinal_, schedule_);
        ++counts_.visited;
      }
    } else if (!canonical) {
      counts_.pruned += range_overlap(len);
    }
    ordinal_ = saturating_add(ordinal_, len);
  }

  /// True when giving slot `slot` the assignment (tmpl, tick) breaks the
  /// canonical order against an earlier slot: an independent pair must keep
  /// the earlier template on the earlier-or-equal tick.
  bool violates(std::size_t slot, std::size_t tmpl, std::size_t tick) const {
    for (std::size_t j = 0; j < slot; ++j) {
      const Assignment& prev = schedule_[j];
      const std::size_t prev_tick = domain_.ticks[prev.tick_index];
      if (prev_tick <= tick) continue;
      if (independent(domain_.templates[prev.tmpl], prev_tick,
                      domain_.templates[tmpl], tick)) {
        return true;
      }
    }
    return false;
  }

  void choose_slot(std::size_t slot, std::size_t first) {
    const std::size_t remaining = depth_ - slot;
    for (std::size_t t = first; t + remaining <= m_; ++t) {
      if (ordinal_ >= end_) return;
      // All completions of (template t at this slot): remaining - 1 more
      // templates from (t, m), every slot from here with any tick.
      const std::uint64_t tmpl_block = saturating_mul(
          tables_.binom[m_ - t - 1][remaining - 1], tables_.gpow[remaining]);
      if (saturating_add(ordinal_, tmpl_block) <= begin_) {
        ordinal_ += tmpl_block;
        continue;
      }
      const std::uint64_t tick_block = saturating_mul(
          tables_.binom[m_ - t - 1][remaining - 1],
          tables_.gpow[remaining - 1]);
      for (std::size_t ti = 0; ti < domain_.ticks.size(); ++ti) {
        if (ordinal_ >= end_) return;
        if (saturating_add(ordinal_, tick_block) <= begin_) {
          ordinal_ += tick_block;
          continue;
        }
        if (violates(slot, t, domain_.ticks[ti])) {
          take_block(tick_block, /*canonical=*/false, /*leaf=*/false);
          continue;
        }
        schedule_.push_back({t, ti});
        if (slot + 1 == depth_) {
          take_block(1, /*canonical=*/true, /*leaf=*/true);
        } else {
          choose_slot(slot + 1, t + 1);
        }
        schedule_.pop_back();
      }
    }
  }

  const Domain& domain_;
  std::uint64_t begin_;
  std::uint64_t end_;
  const ScheduleFn& fn_;
  std::size_t m_;
  std::size_t depth_cap_;
  Tables tables_;
  std::size_t depth_ = 0;
  std::uint64_t ordinal_ = 0;
  Schedule schedule_;
  SpaceCount counts_;
};

}  // namespace

std::size_t footprint_peer(const FaultTemplate& tmpl) noexcept {
  return tmpl.kind == FaultTemplate::Kind::kOutage ? 0 : tmpl.leecher + 1;
}

void Domain::validate(std::size_t leecher_count, std::size_t max_ticks) const {
  if (templates.empty()) {
    throw std::invalid_argument("Domain.templates: must not be empty");
  }
  for (std::size_t i = 0; i < templates.size(); ++i) {
    const FaultTemplate& tmpl = templates[i];
    if (tmpl.duration == 0) {
      throw std::invalid_argument("Domain.templates[" + std::to_string(i) +
                                  "].duration: must be > 0");
    }
    if (tmpl.kind == FaultTemplate::Kind::kCrash &&
        tmpl.leecher >= leecher_count) {
      throw std::invalid_argument(
          "Domain.templates[" + std::to_string(i) + "].leecher: index " +
          std::to_string(tmpl.leecher) + " outside [0, " +
          std::to_string(leecher_count) + ")");
    }
  }
  if (ticks.empty()) {
    throw std::invalid_argument("Domain.ticks: must not be empty");
  }
  for (std::size_t i = 1; i < ticks.size(); ++i) {
    if (ticks[i] <= ticks[i - 1]) {
      throw std::invalid_argument(
          "Domain.ticks: must be strictly ascending (ticks[" +
          std::to_string(i) + "] = " + std::to_string(ticks[i]) + ")");
    }
  }
  if (max_ticks > 0 && ticks.back() >= max_ticks) {
    throw std::invalid_argument(
        "Domain.ticks: start tick " + std::to_string(ticks.back()) +
        " at or past the run horizon (max_ticks = " +
        std::to_string(max_ticks) + ")");
  }
  const std::uint64_t total = count_space(*this);
  if (total > kMaxSpace) {
    throw std::invalid_argument(
        "Domain: schedule space has " +
        (total == kOverflow ? std::string(">= 2^64")
                            : std::to_string(total)) +
        " schedules, above the bound of " + std::to_string(kMaxSpace));
  }
}

std::uint64_t count_space(const Domain& domain) {
  const std::size_t m = domain.templates.size();
  const std::size_t kmax = std::min(domain.max_faults, m);
  const Tables tables(m, domain.ticks.size(), kmax);
  std::uint64_t total = 0;
  for (std::size_t d = 0; d <= kmax; ++d) {
    total = saturating_add(
        total, saturating_mul(tables.binom[m][d], tables.gpow[d]));
  }
  return total;
}

SpaceCount for_schedules_in(const Domain& domain, std::uint64_t begin,
                            std::uint64_t end, const ScheduleFn& fn) {
  DSA_OBS_PHASE("explore/enumerate");
  const std::uint64_t total = count_space(domain);
  begin = std::min(begin, total);
  end = std::min(end, total);
  if (begin >= end) return SpaceCount{0, 0, 0};
  Walker walker(domain, begin, end, fn);
  const SpaceCount counts = walker.run();
  if (obs::enabled()) {
    auto& registry = obs::Registry::global();
    registry.counter("explore.schedules_visited").add(counts.visited);
    registry.counter("explore.schedules_pruned").add(counts.pruned);
  }
  return counts;
}

SpaceCount for_each_schedule(const Domain& domain, const ScheduleFn& fn) {
  return for_schedules_in(domain, 0, count_space(domain), fn);
}

std::string describe(const Domain& domain, const Schedule& schedule) {
  if (schedule.empty()) return "none";
  std::ostringstream out;
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    const Assignment& assignment = schedule[i];
    const FaultTemplate& tmpl = domain.templates[assignment.tmpl];
    if (i > 0) out << ';';
    if (tmpl.kind == FaultTemplate::Kind::kCrash) {
      out << "crash:l" << tmpl.leecher;
    } else {
      out << "outage";
    }
    out << '@' << domain.ticks[assignment.tick_index] << 'x' << tmpl.duration;
  }
  return std::move(out).str();
}

fault::FaultPlan materialize(const Domain& domain, const Schedule& schedule,
                             double message_loss,
                             std::size_t piece_timeout_ticks) {
  fault::FaultPlan plan;
  plan.message_loss = message_loss;
  plan.piece_timeout_ticks = piece_timeout_ticks;
  std::vector<fault::SeederOutage> windows;
  for (const Assignment& assignment : schedule) {
    const FaultTemplate& tmpl = domain.templates[assignment.tmpl];
    const std::size_t tick = domain.ticks[assignment.tick_index];
    if (tmpl.kind == FaultTemplate::Kind::kCrash) {
      plan.crashes.push_back({tmpl.leecher, tick, tmpl.duration});
    } else {
      windows.push_back({tick, tick + tmpl.duration});
    }
  }
  // Overlapping outage windows union into one: seeder_down() is a union
  // predicate anyway, and FaultPlan::validate rejects literal overlaps.
  std::sort(windows.begin(), windows.end(),
            [](const fault::SeederOutage& a, const fault::SeederOutage& b) {
              return a.begin_tick < b.begin_tick;
            });
  for (const fault::SeederOutage& window : windows) {
    if (!plan.seeder_outages.empty() &&
        window.begin_tick < plan.seeder_outages.back().end_tick) {
      plan.seeder_outages.back().end_tick =
          std::max(plan.seeder_outages.back().end_tick, window.end_tick);
    } else {
      plan.seeder_outages.push_back(window);
    }
  }
  return plan;
}

const char* to_string(Objective objective) noexcept {
  switch (objective) {
    case Objective::kMeanTime:
      return "mean_time";
    case Objective::kMaxTime:
      return "max_time";
    case Objective::kStallTicks:
      return "stall_ticks";
  }
  return "mean_time";
}

Objective parse_objective(const std::string& text) {
  if (text == "mean_time") return Objective::kMeanTime;
  if (text == "max_time") return Objective::kMaxTime;
  if (text == "stall_ticks") return Objective::kStallTicks;
  throw std::invalid_argument(
      "unknown objective '" + text +
      "' (expected mean_time|max_time|stall_ticks)");
}

double objective_value(Objective objective, const swarm::SwarmResult& result,
                       double cap_seconds) {
  switch (objective) {
    case Objective::kMeanTime: {
      if (result.completion_time.empty()) return 0.0;
      double sum = 0.0;
      for (const double t : result.completion_time) {
        sum += t < 0.0 ? cap_seconds : t;
      }
      return sum / static_cast<double>(result.completion_time.size());
    }
    case Objective::kMaxTime: {
      double worst = 0.0;
      for (const double t : result.completion_time) {
        worst = std::max(worst, t < 0.0 ? cap_seconds : t);
      }
      return worst;
    }
    case Objective::kStallTicks:
      return static_cast<double>(result.fault_stats.stall_ticks);
  }
  return 0.0;
}

ShrinkResult shrink(const Schedule& worst, double target_value,
                    const EvaluateFn& evaluate) {
  DSA_OBS_PHASE("explore/shrink");
  ShrinkResult result;
  result.schedule = worst;
  result.value = target_value;
  bool progress = true;
  while (progress && !result.schedule.empty()) {
    progress = false;
    for (std::size_t i = 0; i < result.schedule.size(); ++i) {
      Schedule candidate = result.schedule;
      candidate.erase(candidate.begin() + static_cast<std::ptrdiff_t>(i));
      const double value = evaluate(candidate);
      ++result.evaluations;
      if (value >= target_value) {
        result.schedule = std::move(candidate);
        result.value = value;
        progress = true;
        break;  // 1-minimality: restart the scan from the left
      }
    }
  }
  if (obs::enabled()) {
    obs::Registry::global()
        .counter("explore.shrink_evaluations")
        .add(result.evaluations);
  }
  return result;
}

}  // namespace dsa::explore
