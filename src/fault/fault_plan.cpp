#include "fault/fault_plan.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "util/rng.hpp"

namespace dsa::fault {

bool FaultPlan::empty() const noexcept {
  return message_loss == 0.0 && piece_timeout_ticks == 0 &&
         seeder_outages.empty() && crashes.empty();
}

bool FaultPlan::seeder_down(std::size_t tick) const noexcept {
  for (const SeederOutage& outage : seeder_outages) {
    if (tick >= outage.begin_tick && tick < outage.end_tick) return true;
  }
  return false;
}

void FaultPlan::validate(std::size_t leecher_count,
                         std::size_t max_ticks) const {
  if (!(message_loss >= 0.0 && message_loss <= 1.0)) {
    throw std::invalid_argument(
        "FaultPlan.message_loss: must be in [0, 1], got " +
        std::to_string(message_loss));
  }
  if (piece_timeout_ticks > 0) {
    if (retry_backoff_ticks == 0) {
      throw std::invalid_argument(
          "FaultPlan.retry_backoff_ticks: must be > 0 when piece timeouts "
          "are enabled");
    }
    if (max_backoff_ticks < retry_backoff_ticks) {
      throw std::invalid_argument(
          "FaultPlan.max_backoff_ticks: must be >= retry_backoff_ticks");
    }
  }
  for (const SeederOutage& outage : seeder_outages) {
    if (outage.end_tick <= outage.begin_tick) {
      throw std::invalid_argument(
          "FaultPlan.seeder_outages: window [" +
          std::to_string(outage.begin_tick) + ", " +
          std::to_string(outage.end_tick) + ") is empty or inverted");
    }
  }
  // Overlapping windows would make seeder_down() ambiguous about which
  // outage is "active" (and double-count down ticks elsewhere), so they are
  // rejected rather than silently merged.
  std::vector<SeederOutage> sorted = seeder_outages;
  std::sort(sorted.begin(), sorted.end(),
            [](const SeederOutage& a, const SeederOutage& b) {
              return a.begin_tick < b.begin_tick;
            });
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    if (sorted[i].begin_tick < sorted[i - 1].end_tick) {
      throw std::invalid_argument(
          "FaultPlan.seeder_outages: windows [" +
          std::to_string(sorted[i - 1].begin_tick) + ", " +
          std::to_string(sorted[i - 1].end_tick) + ") and [" +
          std::to_string(sorted[i].begin_tick) + ", " +
          std::to_string(sorted[i].end_tick) + ") overlap");
    }
  }
  for (const CrashEvent& crash : crashes) {
    if (crash.leecher >= leecher_count) {
      throw std::invalid_argument(
          "FaultPlan.crashes: leecher index " + std::to_string(crash.leecher) +
          " outside [0, " + std::to_string(leecher_count) + ")");
    }
    if (crash.downtime == 0) {
      throw std::invalid_argument(
          "FaultPlan.crashes: downtime must be > 0 (leecher " +
          std::to_string(crash.leecher) + ")");
    }
    if (max_ticks > 0 && crash.tick >= max_ticks) {
      throw std::invalid_argument(
          "FaultPlan.crashes: tick " + std::to_string(crash.tick) +
          " at or past the run horizon (max_ticks = " +
          std::to_string(max_ticks) + ")");
    }
  }
}

FaultPlan make_fault_plan(const FaultSpec& spec, std::size_t leecher_count,
                          std::size_t horizon_ticks) {
  if (!(spec.intensity >= 0.0 && spec.intensity <= 1.0)) {
    throw std::invalid_argument("FaultSpec.intensity: must be in [0, 1]");
  }
  if (!(spec.max_message_loss >= 0.0 && spec.max_message_loss <= 1.0)) {
    throw std::invalid_argument(
        "FaultSpec.max_message_loss: must be in [0, 1]");
  }
  if (!(spec.crash_fraction >= 0.0 && spec.crash_fraction <= 1.0)) {
    throw std::invalid_argument("FaultSpec.crash_fraction: must be in [0, 1]");
  }
  if (!(spec.outage_fraction >= 0.0 && spec.outage_fraction <= 1.0)) {
    throw std::invalid_argument(
        "FaultSpec.outage_fraction: must be in [0, 1]");
  }
  if (horizon_ticks == 0) {
    throw std::invalid_argument("make_fault_plan: horizon_ticks must be > 0");
  }

  FaultPlan plan;
  if (spec.intensity == 0.0) return plan;  // bitwise-identical baseline

  util::Rng rng(util::hash64(spec.seed ^ 0x0fa17a6b5c3d2e19ULL));
  // At intensity exactly 1.0 the product can land a rounding hair above
  // max_message_loss; clamp so the plan always validates.
  plan.message_loss =
      std::clamp(spec.intensity * spec.max_message_loss, 0.0, 1.0);
  plan.piece_timeout_ticks = spec.piece_timeout_ticks;

  // Crashes: a scaled fraction of distinct leechers, each crashing once in
  // the first half of the horizon and staying dark for 2-10% of it.
  const auto crash_count = static_cast<std::size_t>(
      std::lround(spec.intensity * spec.crash_fraction *
                  static_cast<double>(leecher_count)));
  if (crash_count > 0) {
    std::vector<std::size_t> victims(leecher_count);
    for (std::size_t i = 0; i < leecher_count; ++i) victims[i] = i;
    for (std::size_t i = 0; i < crash_count; ++i) {
      const std::size_t j =
          i + static_cast<std::size_t>(rng.below(victims.size() - i));
      std::swap(victims[i], victims[j]);
    }
    const std::size_t crash_window = std::max<std::size_t>(1, horizon_ticks / 2);
    const std::size_t min_down = std::max<std::size_t>(1, horizon_ticks / 50);
    const std::size_t max_down = std::max(min_down, horizon_ticks / 10);
    for (std::size_t i = 0; i < crash_count; ++i) {
      CrashEvent crash;
      crash.leecher = victims[i];
      crash.tick = 1 + static_cast<std::size_t>(rng.below(crash_window));
      // min_down >= 1 above keeps the draw positive: a downtime of 0 would
      // resurrect the leecher in the same tick it died.
      crash.downtime = std::max<std::size_t>(
          1, static_cast<std::size_t>(
                 rng.between(static_cast<std::int64_t>(min_down),
                             static_cast<std::int64_t>(max_down))));
      plan.crashes.push_back(crash);
    }
  }

  // Seeder outage: one window covering a scaled fraction of the horizon,
  // starting somewhere in its first half.
  const auto outage_len = static_cast<std::size_t>(std::lround(
      spec.intensity * spec.outage_fraction *
      static_cast<double>(horizon_ticks)));
  if (outage_len > 0) {
    SeederOutage outage;
    outage.begin_tick =
        1 + static_cast<std::size_t>(rng.below(horizon_ticks / 2 + 1));
    outage.end_tick = outage.begin_tick + outage_len;
    plan.seeder_outages.push_back(outage);
  }

  plan.validate(leecher_count);
  return plan;
}

}  // namespace dsa::fault
