#include "fault/fault_process.hpp"

#include <stdexcept>

namespace dsa::fault {

std::string to_string(FaultProcessKind kind) {
  switch (kind) {
    case FaultProcessKind::kMemorylessChurn: return "memoryless-churn";
    case FaultProcessKind::kBurstChurn: return "burst-churn";
    case FaultProcessKind::kCapacityDegradation: return "capacity-degradation";
    case FaultProcessKind::kTargetedFailure: return "targeted-failure";
  }
  return "?";
}

FaultProcess FaultProcess::memoryless_churn(double rate) {
  FaultProcess process;
  process.kind = FaultProcessKind::kMemorylessChurn;
  process.rate = rate;
  return process;
}

FaultProcess FaultProcess::burst_churn(std::size_t period, double fraction) {
  FaultProcess process;
  process.kind = FaultProcessKind::kBurstChurn;
  process.period = period;
  process.fraction = fraction;
  return process;
}

FaultProcess FaultProcess::capacity_degradation(std::size_t round,
                                                double factor) {
  FaultProcess process;
  process.kind = FaultProcessKind::kCapacityDegradation;
  process.round = round;
  process.factor = factor;
  return process;
}

FaultProcess FaultProcess::targeted_failure(std::size_t round,
                                            double fraction) {
  FaultProcess process;
  process.kind = FaultProcessKind::kTargetedFailure;
  process.round = round;
  process.fraction = fraction;
  return process;
}

bool FaultProcess::replaces_peers() const noexcept {
  return kind == FaultProcessKind::kMemorylessChurn ||
         kind == FaultProcessKind::kBurstChurn ||
         kind == FaultProcessKind::kTargetedFailure;
}

void FaultProcess::validate() const {
  switch (kind) {
    case FaultProcessKind::kMemorylessChurn:
      if (!(rate >= 0.0 && rate <= 1.0)) {
        throw std::invalid_argument(
            "FaultProcess.rate: memoryless churn rate must be in [0, 1]");
      }
      break;
    case FaultProcessKind::kBurstChurn:
      if (period == 0) {
        throw std::invalid_argument(
            "FaultProcess.period: burst churn period must be >= 1");
      }
      if (!(fraction >= 0.0 && fraction <= 1.0)) {
        throw std::invalid_argument(
            "FaultProcess.fraction: burst churn fraction must be in [0, 1]");
      }
      break;
    case FaultProcessKind::kCapacityDegradation:
      if (!(factor > 0.0 && factor <= 1.0)) {
        throw std::invalid_argument(
            "FaultProcess.factor: degradation factor must be in (0, 1]");
      }
      break;
    case FaultProcessKind::kTargetedFailure:
      if (!(fraction >= 0.0 && fraction <= 1.0)) {
        throw std::invalid_argument(
            "FaultProcess.fraction: targeted-failure fraction must be in "
            "[0, 1]");
      }
      break;
  }
}

}  // namespace dsa::fault
