#include "fault/fault_json.hpp"

#include <cstdint>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "util/fingerprint.hpp"
#include "util/fs.hpp"

namespace dsa::fault {

namespace {

// as_int() already rejects non-integral numbers; this adds the sign check so
// size_t fields get a path-named error instead of a silent wrap.
std::size_t as_size(const util::json::Cursor& cursor) {
  const std::int64_t raw = cursor.as_int();
  if (raw < 0) cursor.fail("must be >= 0");
  return static_cast<std::size_t>(raw);
}

}  // namespace

std::string fault_plan_json_fields(const FaultPlan& plan) {
  std::ostringstream out;
  out << "\"message_loss\":" << util::exact_number(plan.message_loss)
      << ",\"piece_timeout_ticks\":" << plan.piece_timeout_ticks
      << ",\"retry_backoff_ticks\":" << plan.retry_backoff_ticks
      << ",\"max_backoff_ticks\":" << plan.max_backoff_ticks
      << ",\"seeder_outages\":[";
  for (std::size_t i = 0; i < plan.seeder_outages.size(); ++i) {
    const SeederOutage& outage = plan.seeder_outages[i];
    if (i > 0) out << ',';
    out << "{\"begin_tick\":" << outage.begin_tick
        << ",\"end_tick\":" << outage.end_tick << '}';
  }
  out << "],\"crashes\":[";
  for (std::size_t i = 0; i < plan.crashes.size(); ++i) {
    const CrashEvent& crash = plan.crashes[i];
    if (i > 0) out << ',';
    out << "{\"leecher\":" << crash.leecher << ",\"tick\":" << crash.tick
        << ",\"downtime\":" << crash.downtime << '}';
  }
  out << ']';
  return std::move(out).str();
}

std::string to_json(const FaultPlan& plan) {
  return "{\"type\":\"fault_plan\",\"schema\":1," +
         fault_plan_json_fields(plan) + "}\n";
}

FaultPlan fault_plan_from_json(const util::json::Cursor& root) {
  FaultPlan plan;
  if (const auto loss = root.try_key("message_loss")) {
    plan.message_loss = loss->as_double();
  }
  if (const auto timeout = root.try_key("piece_timeout_ticks")) {
    plan.piece_timeout_ticks = as_size(*timeout);
  }
  if (const auto backoff = root.try_key("retry_backoff_ticks")) {
    plan.retry_backoff_ticks = as_size(*backoff);
  }
  if (const auto cap = root.try_key("max_backoff_ticks")) {
    plan.max_backoff_ticks = as_size(*cap);
  }
  if (const auto outages = root.try_key("seeder_outages")) {
    for (std::size_t i = 0; i < outages->size(); ++i) {
      const util::json::Cursor entry = outages->at(i);
      entry.allow_only({"begin_tick", "end_tick"});
      SeederOutage outage;
      outage.begin_tick = as_size(entry.key("begin_tick"));
      outage.end_tick = as_size(entry.key("end_tick"));
      plan.seeder_outages.push_back(outage);
    }
  }
  if (const auto crashes = root.try_key("crashes")) {
    for (std::size_t i = 0; i < crashes->size(); ++i) {
      const util::json::Cursor entry = crashes->at(i);
      entry.allow_only({"leecher", "tick", "downtime"});
      CrashEvent crash;
      crash.leecher = as_size(entry.key("leecher"));
      crash.tick = as_size(entry.key("tick"));
      crash.downtime = as_size(entry.key("downtime"));
      plan.crashes.push_back(crash);
    }
  }
  return plan;
}

FaultPlan load_fault_plan(const std::filesystem::path& path) {
  const util::json::Value document = util::json::parse_file(path);
  const util::json::Cursor root(document, path.string());
  root.allow_only({"type", "schema", "message_loss", "piece_timeout_ticks",
                   "retry_backoff_ticks", "max_backoff_ticks",
                   "seeder_outages", "crashes"});
  if (root.key("type").as_string() != "fault_plan") {
    root.key("type").fail("expected \"fault_plan\"");
  }
  if (root.key("schema").as_int() != 1) {
    root.key("schema").fail("unsupported fault_plan schema (expected 1)");
  }
  FaultPlan plan = fault_plan_from_json(root);
  // Validate with the loosest bounds a file can be checked against; the
  // engine re-validates with the run's real leecher count and horizon.
  plan.validate(std::numeric_limits<std::size_t>::max());
  return plan;
}

void save_fault_plan(const std::filesystem::path& path,
                     const FaultPlan& plan) {
  util::atomic_write(path, to_json(plan));
}

}  // namespace dsa::fault
