// Deterministic fault schedules for the piece-level swarm simulator
// (Sec. 5 validation substrate). A FaultPlan is a value object describing
// every adverse event of one run — per-link message loss, in-flight piece
// timeouts with exponential-backoff retry, leecher crash/rejoin events, and
// seeder outage windows. The swarm engine replays the plan tick by tick from
// a dedicated fault RNG stream, so the same (seed, plan) pair always yields
// a bitwise-identical SwarmResult and an empty plan leaves the baseline run
// untouched.
//
// Plans are either assembled field by field or generated from a FaultSpec,
// whose single `intensity` dial scales every fault class at once — the knob
// the degradation bench sweeps.
#pragma once

#include <cstdint>
#include <vector>

namespace dsa::fault {

/// Half-open tick range [begin_tick, end_tick) during which the seeder is
/// dark: it uploads nothing and its pieces leave the availability census.
struct SeederOutage {
  std::size_t begin_tick = 0;
  std::size_t end_tick = 0;
};

/// Leecher `leecher` (input order) crashes at `tick`, losing all pieces and
/// history, and rejoins `downtime` ticks later as a fresh peer with an empty
/// piece map. Its download time keeps counting from the original arrival.
struct CrashEvent {
  std::size_t leecher = 0;
  std::size_t tick = 0;
  std::size_t downtime = 0;
};

/// Full fault schedule of one swarm run. Default-constructed = no faults.
struct FaultPlan {
  /// Probability that one tick's delivery on one (sender, receiver) link is
  /// lost: the bytes evaporate, crediting neither side and advancing no
  /// piece. In [0, 1].
  double message_loss = 0.0;

  /// Ticks an in-flight piece may go without progress before the receiver
  /// abandons the sender and re-requests elsewhere. 0 disables timeouts.
  std::size_t piece_timeout_ticks = 0;

  /// First retry delay after a timeout on a (receiver, sender) link; doubles
  /// on every consecutive timeout of the pair (capped below) and resets when
  /// the pair completes a piece.
  std::size_t retry_backoff_ticks = 4;
  std::size_t max_backoff_ticks = 64;

  std::vector<SeederOutage> seeder_outages;
  std::vector<CrashEvent> crashes;

  /// True when the plan injects nothing (the engine's fast path).
  [[nodiscard]] bool empty() const noexcept;

  /// True when `tick` falls inside any seeder outage window.
  [[nodiscard]] bool seeder_down(std::size_t tick) const noexcept;

  /// Rejects malformed plans with std::invalid_argument naming the offending
  /// field: loss probability outside [0, 1], empty/inverted/overlapping
  /// outage windows, crash targets outside [0, leecher_count), zero
  /// downtime, zero backoff (or a cap below the base) with timeouts on, and
  /// — when `max_ticks` > 0 — crash ticks at or past the horizon. Every
  /// construction path (field-by-field, FaultSpec expansion, JSON) funnels
  /// through this before a plan reaches the engine.
  void validate(std::size_t leecher_count, std::size_t max_ticks = 0) const;
};

/// Intensity-scaled plan generator. Every knob below is the value reached at
/// intensity 1; intensity 0 produces an empty plan so a swept baseline run
/// is bitwise-identical to a no-fault run.
struct FaultSpec {
  /// Master dial in [0, 1] scaling all fault classes together.
  double intensity = 0.0;

  double max_message_loss = 0.25;   // loss probability at intensity 1
  double crash_fraction = 0.5;      // fraction of leechers crashed once
  double outage_fraction = 0.25;    // fraction of the horizon the seeder is dark
  std::size_t piece_timeout_ticks = 30;  // enabled whenever intensity > 0

  std::uint64_t seed = 1;
};

/// Deterministically expands `spec` into a plan for a swarm of
/// `leecher_count` leechers whose interesting dynamics fit in
/// `horizon_ticks` (crashes and outages are scheduled inside the horizon).
/// Throws std::invalid_argument on out-of-range spec fields.
FaultPlan make_fault_plan(const FaultSpec& spec, std::size_t leecher_count,
                          std::size_t horizon_ticks);

}  // namespace dsa::fault
