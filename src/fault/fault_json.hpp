// JSON (de)serialization for FaultPlan — the interchange format between the
// worst-case explorer (src/explore), `dsa_cli swarm --fault-file`, and
// hand-written fault schedules under examples/faults/.
//
// The on-disk document is a strict schema-v1 object:
//
//   {"type":"fault_plan","schema":1,
//    "message_loss":0.0,"piece_timeout_ticks":0,
//    "retry_backoff_ticks":4,"max_backoff_ticks":64,
//    "seeder_outages":[{"begin_tick":120,"end_tick":200}],
//    "crashes":[{"leecher":3,"tick":81,"downtime":60}]}
//
// Loading validates the plan (FaultPlan::validate with an unbounded horizon;
// the engine re-validates against the run's leecher count and max_ticks), so
// a malformed file fails with a field-named error instead of silently
// simulating garbage. Serialization uses util::exact_number for doubles,
// making a load -> save round trip byte-identical.
#pragma once

#include <filesystem>
#include <string>

#include "fault/fault_plan.hpp"
#include "util/json.hpp"

namespace dsa::fault {

/// Renders the plan's fields as the body of a JSON object (no surrounding
/// braces, no leading/trailing comma) — shared between the bare fault-plan
/// document and the explorer's counterexample format, which embeds the same
/// fields alongside its swarm block.
[[nodiscard]] std::string fault_plan_json_fields(const FaultPlan& plan);

/// The full schema-v1 fault-plan document, newline-terminated.
[[nodiscard]] std::string to_json(const FaultPlan& plan);

/// Reads the fault-plan fields out of an already-parsed document. Missing
/// numeric fields keep their defaults; present fields are type- and
/// range-checked with Cursor path errors. Does NOT call allow_only — the
/// caller owns the document's key whitelist.
[[nodiscard]] FaultPlan fault_plan_from_json(const util::json::Cursor& root);

/// Parses and validates a bare fault-plan file (strict keys). Throws
/// util::json::ParseError / SchemaError on malformed documents and
/// std::invalid_argument (field-named) on semantically bad plans.
[[nodiscard]] FaultPlan load_fault_plan(const std::filesystem::path& path);

/// Writes `to_json(plan)` via util::atomic_write.
void save_fault_plan(const std::filesystem::path& path, const FaultPlan& plan);

}  // namespace dsa::fault
