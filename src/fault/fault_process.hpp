// Pluggable fault processes for the cycle-based round simulator (Sec. 4.3.1).
// The paper's churn study (Sec. 4.4) only exercises memoryless per-round peer
// replacement; these processes generalize that into the perturbation classes
// real deployments see (Nielson et al., Legout et al.): correlated burst
// departures, capacity degradation, and targeted loss of the top-capacity
// class. SimulationConfig carries a list of them; the engine applies each at
// the end of every round in list order, drawing from the run's RNG so results
// stay deterministic in the seed.
#pragma once

#include <cstdint>
#include <string>

namespace dsa::fault {

enum class FaultProcessKind : std::uint8_t {
  /// Every peer is replaced with probability `rate` each round — the paper's
  /// Sec. 4.4 churn, expressed as a process.
  kMemorylessChurn,
  /// Every `period` rounds, a uniformly chosen `fraction` of the population
  /// is replaced at once (flash-crowd departure / correlated failure).
  kBurstChurn,
  /// At round `round`, every peer's upload capacity is multiplied by
  /// `factor` in (0, 1] (ISP throttling, congestion collapse).
  kCapacityDegradation,
  /// At round `round`, the `fraction` highest-capacity peers are replaced
  /// with fresh draws (losing exactly the contributors incentives lean on).
  kTargetedFailure,
};

std::string to_string(FaultProcessKind kind);

/// One fault process. Use the factory functions; unrelated fields are
/// ignored by each kind.
struct FaultProcess {
  FaultProcessKind kind = FaultProcessKind::kMemorylessChurn;
  double rate = 0.0;       // kMemorylessChurn: per-peer per-round probability
  std::size_t period = 0;  // kBurstChurn: rounds between bursts (>= 1)
  double fraction = 0.0;   // kBurstChurn / kTargetedFailure: share hit
  std::size_t round = 0;   // kCapacityDegradation / kTargetedFailure: when
  double factor = 1.0;     // kCapacityDegradation: capacity multiplier

  static FaultProcess memoryless_churn(double rate);
  static FaultProcess burst_churn(std::size_t period, double fraction);
  static FaultProcess capacity_degradation(std::size_t round, double factor);
  static FaultProcess targeted_failure(std::size_t round, double fraction);

  /// True when applying the process replaces peers (and therefore needs a
  /// bandwidth distribution to draw fresh capacities from).
  [[nodiscard]] bool replaces_peers() const noexcept;

  /// Throws std::invalid_argument naming the offending field.
  void validate() const;
};

}  // namespace dsa::fault
