// The serve wire protocol: newline-delimited JSON over a unix socket, one
// document per line (util::socket framing).
//
// Requests (client → daemon):
//   {"op":"ping"}
//   {"op":"status"}
//   {"op":"query","spec":"<scenario spec JSON, as text>","want":"csv"|"table"}
//   {"op":"shutdown"}
//
// Responses (daemon → client):
//   {"type":"pong"}
//   {"type":"status","counters":{"queries":N,"cache_hits":N,...}}
//   {"type":"progress","done":N,"total":N,"cached":N}   (streamed per query)
//   {"type":"result","scenario":...,"kind":...,"want":...,"jobs":N,
//    "cached_jobs":N,"executed_jobs":N,"ms":X,"body":"<csv or table text>"}
//   {"type":"error","message":"..."}
//   {"type":"bye"}
//
// Parsing is strict in the scenario-spec style: unknown keys, missing
// fields, and wrong types raise util::json::SchemaError naming the
// offending "$.key" path.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace dsa::serve {

struct Request {
  enum class Op : std::uint8_t { kPing, kStatus, kQuery, kShutdown };
  Op op = Op::kPing;
  std::string spec_text;     // kQuery: the scenario spec document, verbatim
  std::string want = "csv";  // kQuery: "csv" | "table"
};

/// Parses one request line. Throws util::json::ParseError on malformed
/// JSON and util::json::SchemaError (field-named) on schema violations.
[[nodiscard]] Request parse_request(const std::string& line);

/// Request builders (client side).
[[nodiscard]] std::string make_ping_request();
[[nodiscard]] std::string make_status_request();
[[nodiscard]] std::string make_query_request(const std::string& spec_text,
                                             const std::string& want);
[[nodiscard]] std::string make_shutdown_request();

/// One parsed response line; fields outside the line's type keep their
/// zero/empty defaults.
struct Response {
  std::string type;  // "pong"|"status"|"progress"|"result"|"error"|"bye"
  // progress
  std::uint64_t done = 0;
  std::uint64_t total = 0;
  std::uint64_t cached = 0;
  // result
  std::string scenario;
  std::string kind;
  std::string want;
  std::string body;
  std::uint64_t jobs = 0;
  std::uint64_t cached_jobs = 0;
  std::uint64_t executed_jobs = 0;
  double ms = 0.0;
  // status
  std::map<std::string, std::uint64_t> counters;
  // error
  std::string message;
};

/// Parses one response line; same strictness as parse_request.
[[nodiscard]] Response parse_response(const std::string& line);

/// Response builders (daemon side).
[[nodiscard]] std::string make_pong();
[[nodiscard]] std::string make_bye();
[[nodiscard]] std::string make_error(const std::string& message);
[[nodiscard]] std::string make_progress(std::uint64_t done,
                                        std::uint64_t total,
                                        std::uint64_t cached);
[[nodiscard]] std::string make_status_response(
    const std::map<std::string, std::uint64_t>& counters);
[[nodiscard]] std::string make_result(const Response& result);

}  // namespace dsa::serve
