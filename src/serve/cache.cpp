#include "serve/cache.hpp"

#include <cstdlib>
#include <sstream>
#include <utility>

#include "util/fingerprint.hpp"
#include "util/json.hpp"

namespace dsa::serve {

namespace json = util::json;
using scenario::JobRows;

scenario::Plan canonical_plan(const scenario::ScenarioSpec& spec) {
  if (spec.kind != scenario::Kind::kSweep) return expand_plan(spec);
  scenario::ScenarioSpec canon = spec;
  for (scenario::Axis& axis : canon.axes) {
    if (axis.name == "engine") {
      axis.values = {scenario::ParamValue(std::string("sparse"))};
    } else if (axis.name == "batch_width") {
      axis.values = {scenario::ParamValue(std::int64_t{1})};
    }
  }
  return expand_plan(canon);
}

std::uint64_t rows_check(const JobRows& rows) {
  util::Fingerprint fp(0x7e3d91c5a60b48f2ULL);
  fp.mix(static_cast<std::uint64_t>(rows.size()));
  for (const std::vector<std::string>& row : rows) {
    fp.mix(static_cast<std::uint64_t>(row.size()));
    for (const std::string& cell : row) fp.mix(cell);
  }
  return fp.value();
}

namespace {

/// Rough resident footprint of an entry: cell bytes plus per-cell/row/entry
/// container overhead. Only relative accuracy matters — it drives eviction,
/// never correctness.
std::size_t entry_cost(const JobRows& rows) {
  std::size_t cost = 128;
  for (const std::vector<std::string>& row : rows) {
    cost += 48;
    for (const std::string& cell : row) cost += 32 + cell.size();
  }
  return cost;
}

/// One store line: the manifest job-line schema plus the "check" content
/// hash ("job" is fixed at 0 — the cache addresses by fingerprint alone).
std::string store_line(std::uint64_t fingerprint, const JobRows& rows,
                       double wall_ms) {
  std::string line = "{\"job\":0,\"fp\":\"" + scenario::hex16(fingerprint) +
                     "\",\"ms\":" + util::exact_number(wall_ms) +
                     ",\"check\":\"" + scenario::hex16(rows_check(rows)) +
                     "\",\"rows\":[";
  for (std::size_t r = 0; r < rows.size(); ++r) {
    if (r > 0) line += ',';
    line += '[';
    for (std::size_t c = 0; c < rows[r].size(); ++c) {
      if (c > 0) line += ',';
      line += '"' + json::escape(rows[r][c]) + '"';
    }
    line += ']';
  }
  line += "]}";
  return line;
}

/// Parses a 16-lowercase-hex fingerprint; nullopt on any other shape.
std::optional<std::uint64_t> parse_hex16(const std::string& text) {
  if (text.size() != 16) return std::nullopt;
  std::uint64_t value = 0;
  for (const char ch : text) {
    value <<= 4;
    if (ch >= '0' && ch <= '9') {
      value |= static_cast<std::uint64_t>(ch - '0');
    } else if (ch >= 'a' && ch <= 'f') {
      value |= static_cast<std::uint64_t>(ch - 'a' + 10);
    } else {
      return std::nullopt;
    }
  }
  return value;
}

}  // namespace

ResultCache::ResultCache(Options options) : options_(std::move(options)) {
  if (!options_.store_path.empty()) {
    load_store();
    const std::filesystem::path parent = options_.store_path.parent_path();
    if (!parent.empty()) std::filesystem::create_directories(parent);
    store_.open(options_.store_path, std::ios::binary | std::ios::app);
    if (!store_) {
      throw std::runtime_error("cannot open cache store for append: " +
                               options_.store_path.string());
    }
  }
}

void ResultCache::load_store() {
  std::ifstream in(options_.store_path, std::ios::binary);
  if (!in) return;  // first start — nothing persisted yet
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string contents = buffer.str();

  std::size_t pos = 0;
  while (pos < contents.size()) {
    const std::size_t newline = contents.find('\n', pos);
    if (newline == std::string::npos) {
      // Torn tail: the daemon was killed mid-append. The complete lines
      // before it are still good.
      ++stats_.store_rejected;
      break;
    }
    const std::string line = contents.substr(pos, newline - pos);
    pos = newline + 1;
    json::Value value;
    try {
      value = json::parse(line, "<cache-store>");
    } catch (const std::exception&) {
      ++stats_.store_rejected;
      continue;
    }
    std::optional<scenario::ParsedJobLine> parsed =
        scenario::parse_job_line(value);
    if (!parsed) {
      ++stats_.store_rejected;
      continue;
    }
    const std::optional<std::uint64_t> fp = parse_hex16(parsed->fp_hex);
    if (!fp) {
      ++stats_.store_rejected;
      continue;
    }
    const json::Value* check = value.find("check");
    if (check == nullptr || check->type != json::Value::Type::kString ||
        check->text != scenario::hex16(rows_check(parsed->rows))) {
      // Missing or mismatched content hash: the rows were altered after
      // being written (or the line predates the schema). Never served.
      ++stats_.store_rejected;
      continue;
    }
    insert_locked(*fp, std::move(parsed->rows), parsed->ms,
                  /*persist=*/false);
    ++stats_.store_loaded;
  }
  // Loading counted each line as an insert; those are restorations, not new
  // work, so only explicit insert() calls show up in the insert counter.
  stats_.inserts = 0;
  stats_.evictions = 0;
}

std::optional<JobRows> ResultCache::lookup(std::uint64_t fingerprint) {
  std::lock_guard lock(mutex_);
  const auto it = index_.find(fingerprint);
  if (it == index_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++stats_.hits;
  return it->second->rows;
}

void ResultCache::insert(std::uint64_t fingerprint, const JobRows& rows,
                         double wall_ms) {
  std::lock_guard lock(mutex_);
  insert_locked(fingerprint, rows, wall_ms, /*persist=*/true);
}

void ResultCache::insert_locked(std::uint64_t fingerprint, JobRows rows,
                                double wall_ms, bool persist) {
  const auto it = index_.find(fingerprint);
  if (it != index_.end()) {
    // Determinism makes re-inserts byte-identical; just bump recency.
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (persist && store_.is_open()) {
    store_ << store_line(fingerprint, rows, wall_ms) << '\n';
    store_.flush();
  }
  const std::size_t cost = entry_cost(rows);
  lru_.push_front(Entry{fingerprint, std::move(rows), cost});
  index_[fingerprint] = lru_.begin();
  bytes_ += cost;
  ++stats_.inserts;
  while (bytes_ > options_.memory_budget_bytes && lru_.size() > 1) {
    const Entry& victim = lru_.back();
    bytes_ -= victim.cost;
    index_.erase(victim.fingerprint);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard lock(mutex_);
  Stats out = stats_;
  out.entries = lru_.size();
  out.bytes = bytes_;
  return out;
}

}  // namespace dsa::serve
