// Content-addressed result cache for the `dsa_cli serve` daemon.
//
// Keyed by the per-job util::Fingerprint chain the scenario runner already
// writes into its manifests: two queries that pin the same parameters hash
// to the same key, so the second is a lookup instead of a simulation. The
// repo-wide determinism invariant (bitwise-identical results at any thread
// count, on any engine) is what makes this sound — a cached answer is the
// answer.
//
// Keys are *canonical* fingerprints (canonical_plan below): the sweep
// kind's `engine` and `batch_width` axes select equivalent implementations
// of the same numbers, so they are pinned to sparse/1 before hashing and a
// dense query warms the cache for a batch one.
//
// Storage is an in-memory LRU under a byte budget, backed by an append-only
// on-disk JSONL store whose lines use the manifest job-line schema (plus a
// "check" content hash) — a restarted daemon reloads it, and entries whose
// check does not match their rows are rejected, never served.
#pragma once

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "scenario/manifest.hpp"
#include "scenario/plan.hpp"

namespace dsa::serve {

/// The plan whose job fingerprints key the cache: `spec` with the sweep
/// engine/batch_width axes pinned to sparse/1 (other kinds pass through
/// unchanged). Job count and order always match expand_plan(spec) — only
/// the fingerprints differ.
[[nodiscard]] scenario::Plan canonical_plan(const scenario::ScenarioSpec& spec);

/// Content hash of a job's rows — the "check" field of store lines. A
/// store entry whose rows were altered after the fact no longer matches
/// and is rejected on load.
[[nodiscard]] std::uint64_t rows_check(const scenario::JobRows& rows);

class ResultCache {
 public:
  struct Options {
    /// In-memory LRU budget; the least-recently-used entries are evicted
    /// once the estimated footprint exceeds it (the most recent entry is
    /// always retained, even if alone over budget).
    std::size_t memory_budget_bytes = 64ull << 20;
    /// Append-only JSONL store; empty = memory-only (no persistence).
    /// Loaded on construction: complete, verified lines become entries
    /// (newest-loaded most recent), torn tails and tampered lines are
    /// skipped and counted.
    std::filesystem::path store_path;
  };

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t inserts = 0;
    std::uint64_t evictions = 0;
    std::uint64_t store_loaded = 0;    // entries restored from disk
    std::uint64_t store_rejected = 0;  // disk lines skipped (torn/tampered)
    std::size_t entries = 0;           // current resident entries
    std::size_t bytes = 0;             // current estimated footprint
  };

  explicit ResultCache(Options options);

  /// Returns the rows cached under `fingerprint` (bumping it to
  /// most-recently-used) or nullopt. Counts a hit or miss either way.
  [[nodiscard]] std::optional<scenario::JobRows> lookup(
      std::uint64_t fingerprint);

  /// Caches `rows` under `fingerprint` and appends it to the store (when
  /// persistent). A fingerprint already resident is bumped, not rewritten.
  /// `wall_ms` is provenance carried into the store line, never identity.
  void insert(std::uint64_t fingerprint, const scenario::JobRows& rows,
              double wall_ms);

  [[nodiscard]] Stats stats() const;

 private:
  struct Entry {
    std::uint64_t fingerprint = 0;
    scenario::JobRows rows;
    std::size_t cost = 0;
  };

  void insert_locked(std::uint64_t fingerprint, scenario::JobRows rows,
                     double wall_ms, bool persist);
  void load_store();

  Options options_;
  mutable std::mutex mutex_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;
  std::ofstream store_;
  std::size_t bytes_ = 0;
  Stats stats_;
};

}  // namespace dsa::serve
