#include "serve/protocol.hpp"

#include <cmath>

#include "util/fingerprint.hpp"
#include "util/json.hpp"

namespace dsa::serve {

namespace json = util::json;

namespace {

constexpr std::string_view kOrigin = "<serve-protocol>";

std::uint64_t as_count(const json::Cursor& cursor) {
  const std::int64_t value = cursor.as_int();
  if (value < 0) cursor.fail("expected a non-negative count");
  return static_cast<std::uint64_t>(value);
}

}  // namespace

Request parse_request(const std::string& line) {
  const json::Value root = json::parse(line, kOrigin);
  const json::Cursor cursor(root, std::string(kOrigin));
  cursor.allow_only({"op", "spec", "want"});
  const std::string op = cursor.key("op").as_string();
  Request request;
  if (op == "ping") {
    request.op = Request::Op::kPing;
  } else if (op == "status") {
    request.op = Request::Op::kStatus;
  } else if (op == "shutdown") {
    request.op = Request::Op::kShutdown;
  } else if (op == "query") {
    request.op = Request::Op::kQuery;
    request.spec_text = cursor.key("spec").as_string();
    if (const std::optional<json::Cursor> want = cursor.try_key("want")) {
      request.want = want->as_string();
      if (request.want != "csv" && request.want != "table") {
        want->fail("expected \"csv\" or \"table\"");
      }
    }
    return request;
  } else {
    cursor.key("op").fail(
        "expected \"ping\", \"status\", \"query\", or \"shutdown\"");
  }
  if (cursor.has("spec") || cursor.has("want")) {
    cursor.fail("\"spec\"/\"want\" are only valid with op \"query\"");
  }
  return request;
}

std::string make_ping_request() { return "{\"op\":\"ping\"}"; }

std::string make_status_request() { return "{\"op\":\"status\"}"; }

std::string make_shutdown_request() { return "{\"op\":\"shutdown\"}"; }

std::string make_query_request(const std::string& spec_text,
                               const std::string& want) {
  return "{\"op\":\"query\",\"spec\":\"" + json::escape(spec_text) +
         "\",\"want\":\"" + json::escape(want) + "\"}";
}

Response parse_response(const std::string& line) {
  const json::Value root = json::parse(line, kOrigin);
  const json::Cursor cursor(root, std::string(kOrigin));
  Response response;
  response.type = cursor.key("type").as_string();
  if (response.type == "pong" || response.type == "bye") {
    cursor.allow_only({"type"});
  } else if (response.type == "error") {
    cursor.allow_only({"type", "message"});
    response.message = cursor.key("message").as_string();
  } else if (response.type == "progress") {
    cursor.allow_only({"type", "done", "total", "cached"});
    response.done = as_count(cursor.key("done"));
    response.total = as_count(cursor.key("total"));
    response.cached = as_count(cursor.key("cached"));
  } else if (response.type == "status") {
    cursor.allow_only({"type", "counters"});
    const json::Cursor counters = cursor.key("counters");
    for (const auto& [name, value] : counters.value().members) {
      response.counters[name] = as_count(counters.key(name));
    }
  } else if (response.type == "result") {
    cursor.allow_only({"type", "scenario", "kind", "want", "jobs",
                       "cached_jobs", "executed_jobs", "ms", "body"});
    response.scenario = cursor.key("scenario").as_string();
    response.kind = cursor.key("kind").as_string();
    response.want = cursor.key("want").as_string();
    response.jobs = as_count(cursor.key("jobs"));
    response.cached_jobs = as_count(cursor.key("cached_jobs"));
    response.executed_jobs = as_count(cursor.key("executed_jobs"));
    response.ms = cursor.key("ms").as_double();
    response.body = cursor.key("body").as_string();
  } else {
    cursor.key("type").fail(
        "expected \"pong\", \"status\", \"progress\", \"result\", "
        "\"error\", or \"bye\"");
  }
  return response;
}

std::string make_pong() { return "{\"type\":\"pong\"}"; }

std::string make_bye() { return "{\"type\":\"bye\"}"; }

std::string make_error(const std::string& message) {
  return "{\"type\":\"error\",\"message\":\"" + json::escape(message) + "\"}";
}

std::string make_progress(std::uint64_t done, std::uint64_t total,
                          std::uint64_t cached) {
  return "{\"type\":\"progress\",\"done\":" + std::to_string(done) +
         ",\"total\":" + std::to_string(total) +
         ",\"cached\":" + std::to_string(cached) + "}";
}

std::string make_status_response(
    const std::map<std::string, std::uint64_t>& counters) {
  std::string line = "{\"type\":\"status\",\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) line += ',';
    first = false;
    line += '"' + json::escape(name) + "\":" + std::to_string(value);
  }
  line += "}}";
  return line;
}

std::string make_result(const Response& result) {
  return "{\"type\":\"result\",\"scenario\":\"" +
         json::escape(result.scenario) + "\",\"kind\":\"" +
         json::escape(result.kind) + "\",\"want\":\"" +
         json::escape(result.want) +
         "\",\"jobs\":" + std::to_string(result.jobs) +
         ",\"cached_jobs\":" + std::to_string(result.cached_jobs) +
         ",\"executed_jobs\":" + std::to_string(result.executed_jobs) +
         ",\"ms\":" + util::exact_number(result.ms) + ",\"body\":\"" +
         json::escape(result.body) + "\"}";
}

}  // namespace dsa::serve
