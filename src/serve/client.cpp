#include "serve/client.hpp"

#include <stdexcept>

namespace dsa::serve {

Client::Client(const std::filesystem::path& socket_path)
    : socket_(util::connect_unix(socket_path)) {}

Response Client::transact(const std::string& request_line) {
  socket_.send_line(request_line);
  const std::optional<std::string> line = socket_.recv_line();
  if (!line) {
    throw std::runtime_error("serve daemon closed the connection");
  }
  Response response = parse_response(*line);
  if (response.type == "error") {
    throw std::runtime_error("serve daemon: " + response.message);
  }
  return response;
}

void Client::ping() {
  const Response response = transact(make_ping_request());
  if (response.type != "pong") {
    throw std::runtime_error("unexpected reply to ping: " + response.type);
  }
}

std::map<std::string, std::uint64_t> Client::status() {
  Response response = transact(make_status_request());
  if (response.type != "status") {
    throw std::runtime_error("unexpected reply to status: " + response.type);
  }
  return std::move(response.counters);
}

Response Client::query(
    const std::string& spec_text, const std::string& want,
    const std::function<void(std::uint64_t, std::uint64_t, std::uint64_t)>&
        on_progress) {
  socket_.send_line(make_query_request(spec_text, want));
  for (;;) {
    const std::optional<std::string> line = socket_.recv_line();
    if (!line) {
      throw std::runtime_error(
          "serve daemon closed the connection mid-query");
    }
    Response response = parse_response(*line);
    if (response.type == "progress") {
      if (on_progress) {
        on_progress(response.done, response.total, response.cached);
      }
      continue;
    }
    if (response.type == "error") {
      throw std::runtime_error("serve daemon: " + response.message);
    }
    if (response.type == "result") return response;
    throw std::runtime_error("unexpected reply to query: " + response.type);
  }
}

void Client::shutdown() {
  const Response response = transact(make_shutdown_request());
  if (response.type != "bye") {
    throw std::runtime_error("unexpected reply to shutdown: " +
                             response.type);
  }
}

}  // namespace dsa::serve
