#include "serve/server.hpp"

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/profiler.hpp"
#include "report/report.hpp"
#include "scenario/exec.hpp"
#include "scenario/runner.hpp"
#include "serve/protocol.hpp"
#include "util/csv.hpp"

namespace dsa::serve {

using scenario::JobRows;

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      cache_(options_.cache),
      pool_(options_.threads != 0 ? options_.threads
                                  : util::ThreadPool::default_thread_count()),
      listener_(options_.socket_path) {
  // The daemon's heartbeat: `dsa_cli top <status-dir>` watches the resident
  // service exactly like a batch run — done counts queries answered, and
  // the registry's serve.* counters ride along in the counters map.
  telemetry_ = obs::Telemetry::global().begin_run(
      {.name = obs::sanitize_run_name("serve-" +
                                      options_.socket_path.stem().string()),
       .kind = "serve",
       .spec_fingerprint = 0,
       .jobs_total = 0,
       .output = options_.socket_path.string()});
  telemetry_.set_phase("serving");
  telemetry_.watch_pool(&pool_);
}

std::map<std::string, std::uint64_t> Server::counters() const {
  const ResultCache::Stats stats = cache_.stats();
  return {
      {"queries", queries_.load(std::memory_order_relaxed)},
      {"queries_failed", queries_failed_.load(std::memory_order_relaxed)},
      {"connections", connections_.load(std::memory_order_relaxed)},
      {"jobs_executed", jobs_executed_.load(std::memory_order_relaxed)},
      {"cache_hits", stats.hits},
      {"cache_misses", stats.misses},
      {"cache_inserts", stats.inserts},
      {"cache_evictions", stats.evictions},
      {"cache_entries", stats.entries},
      {"cache_bytes", stats.bytes},
      {"store_loaded", stats.store_loaded},
      {"store_rejected", stats.store_rejected},
  };
}

void Server::serve(std::atomic<bool>& stop) {
  std::vector<std::thread> connections;
  if (options_.verbose) {
    std::fprintf(stderr, "serve: listening on %s (%zu worker thread(s))\n",
                 listener_.path().string().c_str(), pool_.thread_count());
  }
  while (!stop.load(std::memory_order_relaxed)) {
    util::LineSocket connection = listener_.accept(options_.poll_ms);
    if (!connection.valid()) continue;  // timeout or EINTR — re-check stop
    connections_.fetch_add(1, std::memory_order_relaxed);
    connections.emplace_back(
        [this, &stop, conn = std::move(connection)]() mutable {
          handle_connection(std::move(conn), stop);
        });
  }
  for (std::thread& thread : connections) thread.join();
  pool_.wait_idle();
  telemetry_.watch_pool(nullptr);
  telemetry_.finish(true);
  if (options_.verbose) {
    std::fprintf(stderr, "serve: shut down after %llu queries\n",
                 static_cast<unsigned long long>(
                     queries_.load(std::memory_order_relaxed)));
  }
}

void Server::handle_connection(util::LineSocket connection,
                               std::atomic<bool>& stop) {
  std::mutex write_mutex;  // progress events interleave from pool workers
  try {
    while (!stop.load(std::memory_order_relaxed)) {
      if (!connection.wait_readable(options_.poll_ms)) continue;
      const std::optional<std::string> line = connection.recv_line();
      if (!line) return;  // clean disconnect
      Request request;
      try {
        request = parse_request(*line);
      } catch (const std::exception& error) {
        std::lock_guard lock(write_mutex);
        connection.send_line(make_error(error.what()));
        continue;
      }
      switch (request.op) {
        case Request::Op::kPing: {
          std::lock_guard lock(write_mutex);
          connection.send_line(make_pong());
          break;
        }
        case Request::Op::kStatus: {
          std::lock_guard lock(write_mutex);
          connection.send_line(make_status_response(counters()));
          break;
        }
        case Request::Op::kShutdown: {
          {
            std::lock_guard lock(write_mutex);
            connection.send_line(make_bye());
          }
          stop.store(true, std::memory_order_relaxed);
          return;
        }
        case Request::Op::kQuery:
          handle_query(connection, write_mutex, request.spec_text,
                       request.want);
          break;
      }
    }
  } catch (const std::exception& error) {
    // Connection-level I/O failure (peer vanished mid-frame): drop the
    // connection; the daemon keeps serving others.
    if (options_.verbose) {
      std::fprintf(stderr, "serve: connection dropped: %s\n", error.what());
    }
  }
}

void Server::handle_query(util::LineSocket& connection,
                          std::mutex& write_mutex,
                          const std::string& spec_text,
                          const std::string& want) {
  DSA_OBS_PHASE("serve/query");
  const auto query_start = std::chrono::steady_clock::now();
  scenario::Plan plan;
  scenario::Plan canonical;
  try {
    const scenario::ScenarioSpec spec =
        scenario::parse_scenario_text(spec_text, "<query>");
    plan = expand_plan(spec);
    canonical = canonical_plan(spec);
  } catch (const std::exception& error) {
    queries_failed_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard lock(write_mutex);
    connection.send_line(make_error(error.what()));
    return;
  }
  const std::size_t total = plan.jobs.size();

  std::vector<JobRows> results(total);
  std::vector<std::size_t> pending;
  std::size_t cached = 0;
  {
    DSA_OBS_PHASE("serve/cache-hit");
    for (std::size_t i = 0; i < total; ++i) {
      if (std::optional<JobRows> rows =
              cache_.lookup(canonical.jobs[i].fingerprint)) {
        results[i] = std::move(*rows);
        ++cached;
      } else {
        pending.push_back(i);
      }
    }
  }

  // Pre-warm from a kept manifest of a prior `dsa_cli run` of this spec:
  // its job lines are fingerprint-verified against the plan, then adopted
  // into the cache under the canonical keys.
  if (!pending.empty()) {
    DSA_OBS_PHASE("serve/cache-miss");
    const scenario::ManifestData manifest =
        load_manifest(plan, manifest_path(plan));
    if (manifest.header_ok) {
      std::vector<std::size_t> still;
      for (const std::size_t i : pending) {
        if (manifest.have[i]) {
          results[i] = manifest.rows[i];
          cache_.insert(canonical.jobs[i].fingerprint, results[i],
                        manifest.ms[i]);
          ++cached;
        } else {
          still.push_back(i);
        }
      }
      pending = std::move(still);
    }
  }

  if (obs::enabled()) {
    auto& registry = obs::Registry::global();
    registry.counter("serve.queries").increment();
    registry.counter("serve.cache_hits").add(cached);
    registry.counter("serve.cache_misses").add(pending.size());
  }

  bool client_gone = false;
  auto send_progress = [&](std::uint64_t done) {
    std::lock_guard lock(write_mutex);
    if (client_gone) return;
    try {
      connection.send_line(make_progress(done, total, cached));
    } catch (const std::exception&) {
      // The client hung up mid-query. Finish the jobs anyway — they still
      // populate the cache for the next asker.
      client_gone = true;
    }
  };
  send_progress(cached);

  std::mutex query_mutex;
  std::condition_variable query_done;
  std::size_t finished = 0;
  std::string first_error;
  const std::size_t to_run = pending.size();
  for (const std::size_t i : pending) {
    pool_.submit([this, &plan, &canonical, &results, &query_mutex,
                  &query_done, &finished, &first_error, &send_progress,
                  cached, i] {
      // Exceptions stay inside the job: pool.wait_idle() is shared by every
      // concurrent query, so one query's failure must not surface there.
      const auto start = std::chrono::steady_clock::now();
      std::uint64_t done_now = 0;
      try {
        DSA_OBS_PHASE("serve/execute");
        JobRows rows = scenario::execute_job(plan.spec, plan.jobs[i]);
        const double wall_ms = std::chrono::duration<double, std::milli>(
                                   std::chrono::steady_clock::now() - start)
                                   .count();
        cache_.insert(canonical.jobs[i].fingerprint, rows, wall_ms);
        jobs_executed_.fetch_add(1, std::memory_order_relaxed);
        if (obs::enabled()) {
          obs::Registry::global().counter("serve.jobs_executed").increment();
        }
        std::lock_guard lock(query_mutex);
        results[i] = std::move(rows);
        done_now = cached + ++finished;
      } catch (const std::exception& error) {
        std::lock_guard lock(query_mutex);
        if (first_error.empty()) {
          first_error = "job " + std::to_string(plan.jobs[i].index) + " (" +
                        plan.jobs[i].label + "): " + error.what();
        }
        done_now = cached + ++finished;
      }
      send_progress(done_now);
      query_done.notify_all();
    });
  }
  {
    std::unique_lock lock(query_mutex);
    query_done.wait(lock, [&] { return finished == to_run; });
  }

  queries_.fetch_add(1, std::memory_order_relaxed);
  telemetry_.add_done();
  if (!first_error.empty()) {
    queries_failed_.fetch_add(1, std::memory_order_relaxed);
    telemetry_.set_last_error(first_error);
    std::lock_guard lock(write_mutex);
    if (!client_gone) connection.send_line(make_error(first_error));
    return;
  }

  Response result;
  result.scenario = plan.spec.name;
  result.kind = to_string(plan.spec.kind);
  result.want = want;
  result.jobs = total;
  result.cached_jobs = cached;
  result.executed_jobs = to_run;
  const util::CsvTable table = merge_rows(plan, results);
  result.body =
      want == "table" ? report::render_csv_table(table) : table.to_csv();
  result.ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - query_start)
                  .count();
  std::lock_guard lock(write_mutex);
  if (!client_gone) connection.send_line(make_result(result));
}

}  // namespace dsa::serve
