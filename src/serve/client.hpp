// Client side of the serve protocol: one connection, blocking
// request/response helpers. Shared by `dsa_cli query` and bench_serve so
// the CLI and the load test speak exactly the same bytes.
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <map>
#include <string>

#include "serve/protocol.hpp"
#include "util/socket.hpp"

namespace dsa::serve {

class Client {
 public:
  /// Connects to a listening daemon; throws std::runtime_error (naming the
  /// path) when nothing listens there.
  explicit Client(const std::filesystem::path& socket_path);

  /// Round-trips a ping. Throws on transport errors or a non-pong reply.
  void ping();

  /// Fetches the daemon's counters (queries, cache_hits, ...).
  [[nodiscard]] std::map<std::string, std::uint64_t> status();

  /// Submits a query and blocks until its result. Progress lines invoke
  /// `on_progress(done, total, cached)` as they stream in (pass nullptr to
  /// ignore them). Throws std::runtime_error carrying the daemon's message
  /// when the query fails server-side.
  [[nodiscard]] Response query(
      const std::string& spec_text, const std::string& want = "csv",
      const std::function<void(std::uint64_t, std::uint64_t, std::uint64_t)>&
          on_progress = nullptr);

  /// Asks the daemon to shut down and waits for its goodbye.
  void shutdown();

 private:
  Response transact(const std::string& request_line);

  util::LineSocket socket_;
};

}  // namespace dsa::serve
