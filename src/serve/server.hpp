// The resident design-space query daemon behind `dsa_cli serve`.
//
// A Server owns the worker pool, the content-addressed ResultCache, and a
// unix-socket listener. serve() accepts connections until asked to stop
// (an external atomic a signal handler can set, or a client "shutdown"
// request) and answers the wire protocol in serve/protocol.hpp. Each
// connection gets its own thread; query jobs from every connection share
// the one pool, so a second client's cheap cached query is not stuck
// behind a first client's cold sweep.
//
// Determinism: a query's merged output is produced by the same
// expand_plan / execute_job / merge_rows library calls `dsa_cli run` uses,
// so a served answer — cold, cached, or cross-engine via the canonical
// cache key — is byte-identical to the CSV a fresh process would write.
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <map>
#include <string>

#include "obs/telemetry.hpp"
#include "serve/cache.hpp"
#include "util/socket.hpp"
#include "util/thread_pool.hpp"

namespace dsa::serve {

struct ServerOptions {
  std::filesystem::path socket_path;
  /// Worker threads for query jobs; 0 = hardware concurrency.
  std::size_t threads = 0;
  ResultCache::Options cache;
  /// Accept-poll period; the stop flag is observed at this latency.
  int poll_ms = 200;
  bool verbose = false;
};

class Server {
 public:
  /// Binds the socket and loads the cache store immediately (so a bind
  /// conflict or unreadable store fails construction, not first use).
  explicit Server(ServerOptions options);

  /// Accepts and serves connections until `stop` becomes true or a client
  /// sends "shutdown" (which also sets `stop`). Blocking; joins every
  /// connection thread before returning.
  void serve(std::atomic<bool>& stop);

  [[nodiscard]] const std::filesystem::path& socket_path() const noexcept {
    return listener_.path();
  }

  /// Cache + query counters, as reported to "status" requests. Works with
  /// observability compiled out — these are the daemon's own numbers, not
  /// obs::Registry's.
  [[nodiscard]] std::map<std::string, std::uint64_t> counters() const;

 private:
  void handle_connection(util::LineSocket connection,
                         std::atomic<bool>& stop);
  void handle_query(util::LineSocket& connection, std::mutex& write_mutex,
                    const std::string& spec_text, const std::string& want);

  ServerOptions options_;
  ResultCache cache_;
  util::ThreadPool pool_;
  util::UnixListener listener_;
  obs::TelemetryRun telemetry_;
  std::atomic<std::uint64_t> queries_{0};
  std::atomic<std::uint64_t> queries_failed_{0};
  std::atomic<std::uint64_t> jobs_executed_{0};
  std::atomic<std::uint64_t> connections_{0};
};

}  // namespace dsa::serve
