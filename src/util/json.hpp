// Minimal strict JSON layer shared by the scenario spec parser and the obs
// writers.
//
// Reading: parse() builds a Value tree from RFC 8259 JSON, tracking the
// 1-based source line of every value and rejecting duplicate object keys
// (a typo'd spec key must not silently shadow the real one). Cursor wraps a
// Value with its "$.grid.seeds[2]"-style key path, so every schema error a
// reader raises names the file, line, and offending key path.
//
// Writing: escape() is the one string-escaping implementation behind the
// metrics JSONL, Chrome trace, and scenario manifest writers.
#pragma once

#include <cstdint>
#include <filesystem>
#include <initializer_list>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dsa::util::json {

/// Escapes `text` for embedding inside a JSON string literal. Handles the
/// characters RFC 8259 requires; everything else passes through verbatim.
std::string escape(std::string_view text);

/// Malformed JSON text; the message is "<origin>:<line>: <reason>".
struct ParseError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// A schema violation found by a Cursor; the message is
/// "<origin>:<line>: $.key.path: <reason>".
struct SchemaError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// One parsed JSON value. A plain open tree: readers either walk the public
/// fields directly or go through Cursor for path-tracking errors.
class Value {
 public:
  enum class Type : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  Type type = Type::kNull;
  int line = 0;  // 1-based source line where the value starts
  bool boolean = false;
  double number = 0.0;
  std::string text;  // string values
  std::vector<Value> items;                             // arrays
  std::vector<std::pair<std::string, Value>> members;   // objects, file order

  /// Member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Value* find(const std::string& key) const;

  /// "object", "array", "string", ... for error messages.
  [[nodiscard]] const char* type_name() const noexcept;
};

/// Parses one JSON document; `origin` names the source in error messages
/// (typically the file path). Throws ParseError on malformed input,
/// duplicate object keys, or trailing content.
Value parse(std::string_view text, std::string_view origin = "<json>");

/// Reads and parses a file; the path becomes the error origin. Throws
/// std::runtime_error when the file cannot be read, ParseError on bad JSON.
Value parse_file(const std::filesystem::path& path);

/// A view of one Value plus the key path that led to it. All accessors
/// throw SchemaError naming the origin, line, and path on a type or
/// presence mismatch, so spec authors see exactly which key is wrong.
class Cursor {
 public:
  /// Roots a cursor at `$`. The Value must outlive the cursor.
  Cursor(const Value& root, std::string origin)
      : value_(&root), origin_(std::move(origin)), path_("$") {}

  [[nodiscard]] const Value& value() const noexcept { return *value_; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  [[nodiscard]] bool is_object() const noexcept;
  [[nodiscard]] bool is_array() const noexcept;
  [[nodiscard]] bool is_string() const noexcept;
  [[nodiscard]] bool is_number() const noexcept;

  /// True when this object has `key`; fails unless the value is an object.
  [[nodiscard]] bool has(const std::string& key) const;

  /// Descends into a required object member; fails when absent.
  [[nodiscard]] Cursor key(const std::string& key) const;

  /// Descends into an optional object member.
  [[nodiscard]] std::optional<Cursor> try_key(const std::string& key) const;

  /// Fails when the object holds any key outside `allowed` — the
  /// unknown-key rejection that catches spec typos.
  void allow_only(std::initializer_list<std::string_view> allowed) const;

  /// Array length; fails unless the value is an array.
  [[nodiscard]] std::size_t size() const;

  /// Descends into array element `i` (appends "[i]" to the path).
  [[nodiscard]] Cursor at(std::size_t i) const;

  /// Typed reads; each fails with "expected <type>, got <actual>".
  [[nodiscard]] std::string as_string() const;
  [[nodiscard]] double as_double() const;
  /// Rejects non-integral numbers and magnitudes above 2^53.
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] bool as_bool() const;

  /// Raises a SchemaError at this cursor's location with a custom reason.
  [[noreturn]] void fail(const std::string& message) const;

 private:
  Cursor(const Value* value, const Cursor& parent, std::string suffix)
      : value_(value),
        origin_(parent.origin_),
        path_(parent.path_ + std::move(suffix)) {}

  const Value* value_;
  std::string origin_;
  std::string path_;
};

}  // namespace dsa::util::json
