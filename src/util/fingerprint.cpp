#include "util/fingerprint.hpp"

#include <bit>
#include <charconv>
#include <cstdio>

#include "util/rng.hpp"

namespace dsa::util {

Fingerprint::Fingerprint(std::uint64_t salt) : h_(hash64(salt)) {}

Fingerprint& Fingerprint::mix(std::uint64_t v) {
  h_ = hash64(h_ ^ v);
  return *this;
}

Fingerprint& Fingerprint::mix(std::string_view text) {
  mix(static_cast<std::uint64_t>(text.size()));
  for (unsigned char c : text) mix(static_cast<std::uint64_t>(c));
  return *this;
}

Fingerprint& Fingerprint::mix_double(double v) {
  return mix(std::bit_cast<std::uint64_t>(v));
}

std::string Fingerprint::hex() const {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(h_));
  return std::string(buffer, 16);
}

std::filesystem::path checkpoint_path(const std::filesystem::path& final_path,
                                      std::uint64_t fingerprint) {
  char suffix[32];
  std::snprintf(suffix, sizeof(suffix), ".partial-%016llx",
                static_cast<unsigned long long>(fingerprint));
  std::filesystem::path path = final_path;
  path += suffix;
  return path;
}

std::string exact_number(double value) {
  char buffer[32];
  const auto result = std::to_chars(buffer, buffer + sizeof(buffer), value);
  return std::string(buffer, result.ptr);
}

}  // namespace dsa::util
