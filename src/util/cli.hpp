// Minimal command-line argument parser for the dsa_cli tool and other
// executables: one positional subcommand, optional positional operands
// (e.g. a spec file path), and --flag / --flag value options. No external
// dependencies, strict validation. HelpIndex holds the per-command usage
// text behind `dsa_cli help <command>`.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace dsa::util {

/// Parsed command line: `prog subcommand spec.json --a 1 --b --c x`.
class CliArgs {
 public:
  /// Parses argv (excluding argv[0]). Flags start with "--"; a flag is
  /// boolean when followed by another flag or the end, valued otherwise.
  /// Bare tokens after the subcommand become positionals, except a token
  /// immediately following a flag, which binds as that flag's value.
  /// Throws std::invalid_argument on malformed input (e.g. a duplicated
  /// flag).
  static CliArgs parse(int argc, const char* const* argv);

  /// The first non-flag token, if any ("pra", "swarm", ...).
  [[nodiscard]] const std::string& subcommand() const noexcept {
    return subcommand_;
  }

  [[nodiscard]] bool has(const std::string& flag) const;

  /// Value of a flag; std::nullopt when absent, throws std::invalid_argument
  /// when present but boolean.
  [[nodiscard]] std::optional<std::string> value(
      const std::string& flag) const;

  /// Typed accessors with defaults; throw std::invalid_argument on
  /// unparsable values.
  [[nodiscard]] std::string get(const std::string& flag,
                                const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& flag,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& flag,
                                  double fallback) const;

  /// Bare tokens after the subcommand, in order.
  [[nodiscard]] const std::vector<std::string>& positionals() const noexcept {
    return positionals_;
  }

  /// Positional `i` (marks it consumed); `fallback` when absent.
  [[nodiscard]] std::string positional(std::size_t i,
                                       const std::string& fallback = "") const;

  /// Flags the caller never consumed — used to reject typos. Call after all
  /// get()/has() lookups; returns the unknown flag names.
  [[nodiscard]] std::vector<std::string> unconsumed() const;

  /// Positionals the caller never read via positional() — commands that
  /// take none (or fewer than given) reject these as stray arguments.
  [[nodiscard]] std::vector<std::string> unconsumed_positionals() const;

 private:
  std::string subcommand_;
  // flag name (without "--") -> value ("" for boolean flags)
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positionals_;
  mutable std::map<std::string, bool> consumed_;
  mutable std::vector<bool> positional_consumed_;
};

/// Help text for one subcommand: the one-line summary shown in the command
/// list plus the full usage block shown by `help <command>`.
struct CommandHelp {
  std::string name;
  std::string summary;
  std::string usage;
};

/// Lookup table over CommandHelp entries, preserving registration order.
class HelpIndex {
 public:
  explicit HelpIndex(std::vector<CommandHelp> commands);

  /// nullptr when the command is unknown.
  [[nodiscard]] const CommandHelp* find(const std::string& name) const;

  /// "  name    summary" lines, names aligned, registration order.
  [[nodiscard]] std::string command_list() const;

  [[nodiscard]] const std::vector<CommandHelp>& commands() const noexcept {
    return commands_;
  }

 private:
  std::vector<CommandHelp> commands_;
};

}  // namespace dsa::util
