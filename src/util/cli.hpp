// Minimal command-line argument parser for the dsa_cli tool and other
// executables: one positional subcommand followed by --flag / --flag value
// options. No external dependencies, strict validation.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace dsa::util {

/// Parsed command line: `prog subcommand --a 1 --b --c x`.
class CliArgs {
 public:
  /// Parses argv (excluding argv[0]). Flags start with "--"; a flag is
  /// boolean when followed by another flag or the end, valued otherwise.
  /// Throws std::invalid_argument on malformed input (e.g. a bare value
  /// with no preceding flag).
  static CliArgs parse(int argc, const char* const* argv);

  /// The first non-flag token, if any ("pra", "swarm", ...).
  [[nodiscard]] const std::string& subcommand() const noexcept {
    return subcommand_;
  }

  [[nodiscard]] bool has(const std::string& flag) const;

  /// Value of a flag; std::nullopt when absent, throws std::invalid_argument
  /// when present but boolean.
  [[nodiscard]] std::optional<std::string> value(
      const std::string& flag) const;

  /// Typed accessors with defaults; throw std::invalid_argument on
  /// unparsable values.
  [[nodiscard]] std::string get(const std::string& flag,
                                const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& flag,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& flag,
                                  double fallback) const;

  /// Flags the caller never consumed — used to reject typos. Call after all
  /// get()/has() lookups; returns the unknown flag names.
  [[nodiscard]] std::vector<std::string> unconsumed() const;

 private:
  std::string subcommand_;
  // flag name (without "--") -> value ("" for boolean flags)
  std::map<std::string, std::string> flags_;
  mutable std::map<std::string, bool> consumed_;
};

}  // namespace dsa::util
