#include "util/cli.hpp"

#include <algorithm>
#include <stdexcept>

namespace dsa::util {

CliArgs CliArgs::parse(int argc, const char* const* argv) {
  CliArgs args;
  int i = 0;
  // Optional leading subcommand.
  if (i < argc && argv[i][0] != '-') {
    args.subcommand_ = argv[i];
    ++i;
  }
  while (i < argc) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) != 0 || token.size() <= 2) {
      // Bare token in flag position: a positional operand (e.g. the spec
      // path of `run spec.json`). Commands that take none reject it later
      // via unconsumed_positionals().
      args.positionals_.push_back(token);
      ++i;
      continue;
    }
    const std::string name = token.substr(2);
    if (args.flags_.count(name)) {
      throw std::invalid_argument("duplicate flag --" + name);
    }
    std::string value;
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      value = argv[i + 1];
      ++i;
    }
    args.flags_[name] = value;
    ++i;
  }
  args.positional_consumed_.assign(args.positionals_.size(), false);
  return args;
}

bool CliArgs::has(const std::string& flag) const {
  const auto it = flags_.find(flag);
  if (it == flags_.end()) return false;
  consumed_[flag] = true;
  return true;
}

std::optional<std::string> CliArgs::value(const std::string& flag) const {
  const auto it = flags_.find(flag);
  if (it == flags_.end()) return std::nullopt;
  consumed_[flag] = true;
  if (it->second.empty()) {
    throw std::invalid_argument("flag --" + flag + " needs a value");
  }
  return it->second;
}

std::string CliArgs::get(const std::string& flag,
                         const std::string& fallback) const {
  const auto v = value(flag);
  return v ? *v : fallback;
}

std::int64_t CliArgs::get_int(const std::string& flag,
                              std::int64_t fallback) const {
  const auto v = value(flag);
  if (!v) return fallback;
  try {
    std::size_t pos = 0;
    const long long parsed = std::stoll(*v, &pos);
    if (pos != v->size()) throw std::invalid_argument("trailing chars");
    return static_cast<std::int64_t>(parsed);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + flag + " expects an integer, got '" +
                                *v + "'");
  }
}

double CliArgs::get_double(const std::string& flag, double fallback) const {
  const auto v = value(flag);
  if (!v) return fallback;
  try {
    std::size_t pos = 0;
    const double parsed = std::stod(*v, &pos);
    if (pos != v->size()) throw std::invalid_argument("trailing chars");
    return parsed;
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + flag + " expects a number, got '" +
                                *v + "'");
  }
}

std::string CliArgs::positional(std::size_t i,
                                const std::string& fallback) const {
  if (i >= positionals_.size()) return fallback;
  positional_consumed_[i] = true;
  return positionals_[i];
}

std::vector<std::string> CliArgs::unconsumed() const {
  std::vector<std::string> unknown;
  for (const auto& [name, value] : flags_) {
    (void)value;
    if (!consumed_.count(name)) unknown.push_back(name);
  }
  return unknown;
}

std::vector<std::string> CliArgs::unconsumed_positionals() const {
  std::vector<std::string> stray;
  for (std::size_t i = 0; i < positionals_.size(); ++i) {
    if (!positional_consumed_[i]) stray.push_back(positionals_[i]);
  }
  return stray;
}

HelpIndex::HelpIndex(std::vector<CommandHelp> commands)
    : commands_(std::move(commands)) {}

const CommandHelp* HelpIndex::find(const std::string& name) const {
  for (const CommandHelp& cmd : commands_) {
    if (cmd.name == name) return &cmd;
  }
  return nullptr;
}

std::string HelpIndex::command_list() const {
  std::size_t width = 0;
  for (const CommandHelp& cmd : commands_) {
    width = std::max(width, cmd.name.size());
  }
  std::string out;
  for (const CommandHelp& cmd : commands_) {
    out += "  " + cmd.name;
    out.append(width - cmd.name.size() + 2, ' ');
    out += cmd.summary + "\n";
  }
  return out;
}

}  // namespace dsa::util
