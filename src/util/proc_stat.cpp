#include "util/proc_stat.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace dsa::util {

namespace {

#if defined(__linux__)
/// Parses the "<number> kB" payload of a /proc/self/status line.
std::uint64_t parse_kb(const char* line) {
  while (*line != '\0' && (*line < '0' || *line > '9')) ++line;
  return static_cast<std::uint64_t>(std::strtoull(line, nullptr, 10));
}
#endif

}  // namespace

ProcStat read_proc_stat() noexcept {
  ProcStat stat;
#if defined(__linux__)
  std::FILE* file = std::fopen("/proc/self/status", "r");
  if (file == nullptr) return stat;
  char line[256];
  while (std::fgets(line, sizeof(line), file) != nullptr) {
    if (std::strncmp(line, "VmRSS:", 6) == 0) {
      stat.rss_kb = parse_kb(line + 6);
    } else if (std::strncmp(line, "VmHWM:", 6) == 0) {
      stat.peak_rss_kb = parse_kb(line + 6);
    }
    if (stat.rss_kb != 0 && stat.peak_rss_kb != 0) break;
  }
  std::fclose(file);
#endif
  return stat;
}

}  // namespace dsa::util
