// Filesystem helpers shared by every writer of result artifacts.
#pragma once

#include <filesystem>
#include <string_view>

namespace dsa::util {

/// Atomically replaces `path` with `contents`: writes `<path>.tmp`, flushes,
/// then renames over the target, so readers never see a torn or partial
/// file. Creates parent directories as needed. Throws std::runtime_error on
/// any I/O failure (with the path in the message). This is the one
/// write-then-rename implementation behind CSV caches, checkpoints, bench
/// JSON, and the obs trace/metrics files.
void atomic_write(const std::filesystem::path& path, std::string_view contents);

}  // namespace dsa::util
