// Tiny CSV reader/writer used to persist experiment datasets (e.g. the PRA
// sweep shared by several figure benches) and to emit machine-readable series
// next to each bench's textual summary. Only the subset of CSV we produce is
// supported: comma separation, no embedded commas/quotes/newlines in fields.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

namespace dsa::util {

/// In-memory CSV document: a header row plus data rows of equal width.
class CsvTable {
 public:
  CsvTable() = default;

  /// Creates a table with the given column names.
  explicit CsvTable(std::vector<std::string> header);

  [[nodiscard]] const std::vector<std::string>& header() const noexcept {
    return header_;
  }
  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t column_count() const noexcept {
    return header_.size();
  }
  [[nodiscard]] const std::vector<std::string>& row(std::size_t i) const {
    return rows_.at(i);
  }

  /// Index of a named column; throws std::out_of_range if absent.
  [[nodiscard]] std::size_t column(const std::string& name) const;

  /// Appends a row; throws std::invalid_argument on width mismatch.
  void add_row(std::vector<std::string> fields);

  /// Field accessors by (row, column-name).
  [[nodiscard]] const std::string& at(std::size_t row,
                                      const std::string& col) const;
  [[nodiscard]] double number_at(std::size_t row, const std::string& col) const;

  /// Serializes to `path`, creating parent directories. The write is
  /// atomic: the table lands in `<path>.tmp` first and is renamed into
  /// place, so a crash mid-write never leaves a truncated file at `path`.
  /// Throws on I/O error (the temporary is removed on failure).
  void save(const std::filesystem::path& path) const;

  /// The exact bytes save() writes: header + rows, comma-joined,
  /// newline-terminated. In-memory consumers (the serve daemon's query
  /// responses) stay byte-identical to the on-disk artifact through this.
  [[nodiscard]] std::string to_csv() const;

  /// Parses a file previously written by save(). Throws on I/O or format
  /// error.
  static CsvTable load(const std::filesystem::path& path);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with enough digits to round-trip typical metrics.
std::string format_number(double value);

}  // namespace dsa::util
