#include "util/csv.hpp"

#include <charconv>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/fs.hpp"

namespace dsa::util {

namespace {

std::vector<std::string> split_line(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream stream(line);
  while (std::getline(stream, field, ',')) fields.push_back(field);
  if (!line.empty() && line.back() == ',') fields.emplace_back();
  return fields;
}

void validate_field(const std::string& field) {
  if (field.find_first_of(",\"\n\r") != std::string::npos) {
    throw std::invalid_argument("CsvTable: field contains unsupported char: " +
                                field);
  }
}

}  // namespace

CsvTable::CsvTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  for (const auto& name : header_) validate_field(name);
}

std::size_t CsvTable::column(const std::string& name) const {
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (header_[i] == name) return i;
  }
  throw std::out_of_range("CsvTable: no column named '" + name + "'");
}

void CsvTable::add_row(std::vector<std::string> fields) {
  if (fields.size() != header_.size()) {
    throw std::invalid_argument("CsvTable: row width " +
                                std::to_string(fields.size()) +
                                " != header width " +
                                std::to_string(header_.size()));
  }
  for (const auto& field : fields) validate_field(field);
  rows_.push_back(std::move(fields));
}

const std::string& CsvTable::at(std::size_t row, const std::string& col) const {
  return rows_.at(row).at(column(col));
}

double CsvTable::number_at(std::size_t row, const std::string& col) const {
  const std::string& text = at(row, col);
  try {
    return std::stod(text);
  } catch (const std::exception&) {
    throw std::invalid_argument("CsvTable: field '" + text +
                                "' is not numeric");
  }
}

std::string CsvTable::to_csv() const {
  std::string text;
  auto write_row = [&text](const std::vector<std::string>& fields) {
    for (std::size_t i = 0; i < fields.size(); ++i) {
      if (i) text += ',';
      text += fields[i];
    }
    text += '\n';
  };
  write_row(header_);
  for (const auto& row : rows_) write_row(row);
  return text;
}

void CsvTable::save(const std::filesystem::path& path) const {
  // Rendered in memory and handed to atomic_write (write `<path>.tmp`,
  // rename) so readers and checkpoint resumers never observe a
  // half-written table.
  atomic_write(path, to_csv());
}

CsvTable CsvTable::load(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("CsvTable: cannot open for read: " +
                             path.string());
  }
  std::string line;
  if (!std::getline(in, line)) {
    throw std::runtime_error("CsvTable: empty file: " + path.string());
  }
  CsvTable table(split_line(line));
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    table.add_row(split_line(line));
  }
  return table;
}

std::string format_number(double value) {
  char buffer[64];
  const auto [ptr, ec] =
      std::to_chars(buffer, buffer + sizeof(buffer), value,
                    std::chars_format::general, 10);
  if (ec != std::errc{}) return "nan";
  return std::string(buffer, ptr);
}

}  // namespace dsa::util
