#include "util/fs.hpp"

#include <fstream>
#include <stdexcept>
#include <string>

namespace dsa::util {

void atomic_write(const std::filesystem::path& path,
                  std::string_view contents) {
  if (path.has_parent_path()) {
    std::filesystem::create_directories(path.parent_path());
  }
  std::filesystem::path tmp = path;
  tmp += ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
    if (!out) {
      throw std::runtime_error("atomic_write: cannot open for write: " +
                               tmp.string());
    }
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size()));
    out.flush();
    if (!out) {
      std::error_code ignored;
      std::filesystem::remove(tmp, ignored);
      throw std::runtime_error("atomic_write: write failed: " + tmp.string());
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::error_code ignored;
    std::filesystem::remove(tmp, ignored);
    throw std::runtime_error("atomic_write: rename to " + path.string() +
                             " failed: " + ec.message());
  }
}

}  // namespace dsa::util
