// Process memory gauges for the observability layer: current and peak
// resident set size, read from the OS on demand.
//
// On Linux the values come from /proc/self/status (VmRSS / VmHWM); on other
// platforms, or when the pseudo-file is unreadable, every field is zero —
// callers treat 0 as "unknown" and never fail on it. Reading is a handful of
// line scans over a small kernel-generated buffer: cheap enough for a 1 Hz
// telemetry sampler or a once-per-bench epilogue, and it touches no state of
// the process being measured (no locks, no allocation visible to the sim).
#pragma once

#include <cstdint>

namespace dsa::util {

/// Point-in-time memory readings, in kilobytes. Zero means unknown.
struct ProcStat {
  std::uint64_t rss_kb = 0;       // current resident set size (VmRSS)
  std::uint64_t peak_rss_kb = 0;  // peak resident set size (VmHWM)
};

/// Reads the current process's memory gauges. Never throws.
[[nodiscard]] ProcStat read_proc_stat() noexcept;

}  // namespace dsa::util
