// Unix-domain stream sockets with newline-delimited message framing — the
// transport under the `dsa_cli serve` daemon and its clients.
//
// The framing matches the repo's other wire formats (scenario manifests,
// telemetry time-series): one complete JSON document per '\n'-terminated
// line. LineSocket buffers reads so a message split across recv() calls is
// reassembled, and callers never see a torn frame. All errors throw
// std::runtime_error naming the socket path or syscall; EINTR is retried.
//
// UnixListener::accept() takes a poll timeout so a serving loop can wake
// periodically to observe shutdown flags (a SIGTERM handler can only set an
// atomic), instead of blocking forever in accept(2).
#pragma once

#include <cstddef>
#include <filesystem>
#include <optional>
#include <string>
#include <string_view>

namespace dsa::util {

/// One connected stream socket with line framing. Move-only RAII over the
/// file descriptor.
class LineSocket {
 public:
  LineSocket() = default;
  explicit LineSocket(int fd) : fd_(fd) {}
  LineSocket(LineSocket&& other) noexcept;
  LineSocket& operator=(LineSocket&& other) noexcept;
  LineSocket(const LineSocket&) = delete;
  LineSocket& operator=(const LineSocket&) = delete;
  ~LineSocket();

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }

  /// Writes `line` plus a terminating '\n' in full. `line` must not itself
  /// contain '\n' (it would tear the framing); throws std::logic_error if
  /// it does, std::runtime_error on I/O failure or a closed peer.
  void send_line(std::string_view line);

  /// Reads the next '\n'-terminated line (without the terminator). Returns
  /// std::nullopt on clean EOF at a frame boundary; throws on I/O errors or
  /// EOF mid-line (a torn frame).
  [[nodiscard]] std::optional<std::string> recv_line();

  /// True when recv_line() can make progress without waiting on an idle
  /// peer: a buffered line is already complete, or the descriptor is
  /// readable (data or EOF). Waits up to `timeout_ms`; false on timeout or
  /// EINTR — a serving loop uses this to re-check its stop flag instead of
  /// blocking forever in recv.
  [[nodiscard]] bool wait_readable(int timeout_ms);

  void close() noexcept;

 private:
  int fd_ = -1;
  std::string buffer_;  // bytes received past the last returned line
};

/// A bound, listening unix-domain socket. Binding unlinks a stale socket
/// file left by a dead daemon first (after probing that nothing accepts on
/// it), and the destructor unlinks the path again on clean shutdown.
class UnixListener {
 public:
  /// Binds and listens on `path`. Throws std::runtime_error when the path
  /// exceeds sockaddr_un limits (~100 bytes), when another live process
  /// already listens there, or on any syscall failure.
  explicit UnixListener(const std::filesystem::path& path);
  UnixListener(const UnixListener&) = delete;
  UnixListener& operator=(const UnixListener&) = delete;
  ~UnixListener();

  [[nodiscard]] const std::filesystem::path& path() const noexcept {
    return path_;
  }

  /// Waits up to `timeout_ms` for a connection. Returns an invalid socket
  /// on timeout; throws on syscall failure.
  [[nodiscard]] LineSocket accept(int timeout_ms);

 private:
  int fd_ = -1;
  std::filesystem::path path_;
};

/// Connects to a listening unix socket. Throws std::runtime_error (naming
/// the path) when nothing listens there or the path is too long.
[[nodiscard]] LineSocket connect_unix(const std::filesystem::path& path);

}  // namespace dsa::util
