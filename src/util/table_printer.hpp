// Aligned plain-text table printer used by the bench binaries to render
// paper-style tables and figure series on stdout.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace dsa::util {

/// Collects rows of string cells and prints them with aligned columns.
class TablePrinter {
 public:
  /// Creates a printer with the given column headings.
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends a row; throws std::invalid_argument on width mismatch.
  void add_row(std::vector<std::string> cells);

  /// Renders header, separator, and rows to `out`.
  void print(std::ostream& out) const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats `value` with `digits` digits after the decimal point.
std::string fixed(double value, int digits);

}  // namespace dsa::util
