#include "util/table_printer.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace dsa::util {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument("TablePrinter: row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

void TablePrinter::print(std::ostream& out) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << "  ";
      out << row[c];
      for (std::size_t pad = row[c].size(); pad < widths[c]; ++pad) out << ' ';
    }
    out << '\n';
  };
  print_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c ? 2 : 0);
  }
  for (std::size_t i = 0; i < total; ++i) out << '-';
  out << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string fixed(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", digits, value);
  return buffer;
}

}  // namespace dsa::util
