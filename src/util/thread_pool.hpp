// Minimal fixed-size thread pool used to farm out independent simulation
// work items (tournament encounters, performance runs). Results must not
// depend on scheduling: callers seed each work item independently (see
// Rng::derive) and write to disjoint output slots.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <utility>
#include <vector>

namespace dsa::util {

/// Fixed pool of worker threads executing void() jobs FIFO.
class ThreadPool {
 public:
  /// Spawns `threads` workers (at least one). Defaults to the hardware
  /// concurrency, which may be 1 on constrained machines.
  explicit ThreadPool(std::size_t threads = default_thread_count()) {
    if (threads == 0) threads = 1;
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard lock(mutex_);
      stopping_ = true;
    }
    work_available_.notify_all();
    for (auto& worker : workers_) worker.join();
  }

  /// Enqueues a job. Must not be called after destruction has begun.
  void submit(std::function<void()> job) {
    {
      std::lock_guard lock(mutex_);
      jobs_.push(std::move(job));
      ++pending_;
    }
    work_available_.notify_one();
  }

  /// Blocks until every submitted job has finished executing. If any job
  /// threw, rethrows the first captured exception (later ones are dropped)
  /// and clears it so the pool stays usable.
  void wait_idle() {
    std::unique_lock lock(mutex_);
    idle_.wait(lock, [this] { return pending_ == 0; });
    if (first_error_) {
      std::exception_ptr error = std::exchange(first_error_, nullptr);
      lock.unlock();
      std::rethrow_exception(error);
    }
  }

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size();
  }

  /// Jobs submitted but not yet finished (queued + executing). Lock-free and
  /// approximate by nature — meant for observers (telemetry queue-depth
  /// gauges), not for synchronization; use wait_idle() for that.
  [[nodiscard]] std::size_t pending_jobs() const noexcept {
    return pending_.load(std::memory_order_relaxed);
  }

  /// Hardware concurrency with a floor of one.
  static std::size_t default_thread_count() noexcept {
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : n;
  }

  /// Convenience: runs fn(i) for i in [0, count) across the pool and waits.
  /// fn must be safe to invoke concurrently for distinct indices. Workers
  /// grab `grain` consecutive indices per atomic increment, so cheap work
  /// items (e.g. flattened per-run simulation tasks) amortize the shared
  /// counter instead of contending on it; grain 1 preserves the original
  /// one-index-at-a-time behavior. If any invocation throws, the rest of
  /// that chunk is skipped, other chunks still run, and the first exception
  /// is rethrown here after the lanes drain.
  template <typename Fn>
  void parallel_for(std::size_t count, Fn&& fn, std::size_t grain = 1) {
    if (count == 0) return;
    if (grain == 0) grain = 1;
    if (thread_count() == 1) {
      // Avoid queueing overhead entirely on single-core machines.
      for (std::size_t i = 0; i < count; ++i) fn(i);
      return;
    }
    std::atomic<std::size_t> next{0};
    const std::size_t chunks = (count + grain - 1) / grain;
    const std::size_t lanes = std::min(thread_count(), chunks);
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      submit([&next, count, grain, &fn] {
        for (std::size_t begin = next.fetch_add(grain); begin < count;
             begin = next.fetch_add(grain)) {
          const std::size_t end = std::min(begin + grain, count);
          for (std::size_t i = begin; i < end; ++i) fn(i);
        }
      });
    }
    wait_idle();
  }

 private:
  void worker_loop() {
    for (;;) {
      std::function<void()> job;
      {
        std::unique_lock lock(mutex_);
        work_available_.wait(lock,
                             [this] { return stopping_ || !jobs_.empty(); });
        if (jobs_.empty()) return;  // stopping_ and drained
        job = std::move(jobs_.front());
        jobs_.pop();
      }
      std::exception_ptr error;
      try {
        job();
      } catch (...) {
        error = std::current_exception();
      }
      {
        std::lock_guard lock(mutex_);
        if (error && !first_error_) first_error_ = error;
        if (--pending_ == 0) idle_.notify_all();
      }
    }
  }

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::queue<std::function<void()>> jobs_;
  // Atomic so observers can read it without the mutex; all writes still
  // happen under mutex_, preserving the idle_ wait/notify protocol.
  std::atomic<std::size_t> pending_{0};
  bool stopping_ = false;
  std::exception_ptr first_error_;
  std::vector<std::thread> workers_;
};

}  // namespace dsa::util
