#include "util/socket.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace dsa::util {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

/// Fills a sockaddr_un; throws when the path does not fit (the kernel
/// silently truncates otherwise, which would bind a different path).
sockaddr_un make_address(const std::filesystem::path& path) {
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  const std::string text = path.string();
  if (text.empty()) {
    throw std::runtime_error("unix socket path must not be empty");
  }
  if (text.size() >= sizeof(address.sun_path)) {
    throw std::runtime_error("unix socket path too long (" +
                             std::to_string(text.size()) + " bytes, max " +
                             std::to_string(sizeof(address.sun_path) - 1) +
                             "): " + text);
  }
  std::memcpy(address.sun_path, text.c_str(), text.size() + 1);
  return address;
}

int make_socket() {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket(AF_UNIX)");
  return fd;
}

}  // namespace

LineSocket::LineSocket(LineSocket&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), buffer_(std::move(other.buffer_)) {}

LineSocket& LineSocket::operator=(LineSocket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    buffer_ = std::move(other.buffer_);
  }
  return *this;
}

LineSocket::~LineSocket() { close(); }

void LineSocket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

void LineSocket::send_line(std::string_view line) {
  if (fd_ < 0) throw std::runtime_error("send_line on a closed socket");
  if (line.find('\n') != std::string_view::npos) {
    throw std::logic_error("send_line: message contains a newline");
  }
  std::string frame(line);
  frame += '\n';
  std::size_t sent = 0;
  while (sent < frame.size()) {
    // MSG_NOSIGNAL: a vanished peer surfaces as EPIPE here instead of
    // killing the daemon with SIGPIPE.
    const ssize_t n = ::send(fd_, frame.data() + sent, frame.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("send on unix socket");
    }
    sent += static_cast<std::size_t>(n);
  }
}

std::optional<std::string> LineSocket::recv_line() {
  if (fd_ < 0) throw std::runtime_error("recv_line on a closed socket");
  for (;;) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      return line;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("recv on unix socket");
    }
    if (n == 0) {
      if (!buffer_.empty()) {
        throw std::runtime_error(
            "unix socket peer closed mid-line (torn frame of " +
            std::to_string(buffer_.size()) + " bytes)");
      }
      return std::nullopt;
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

bool LineSocket::wait_readable(int timeout_ms) {
  if (fd_ < 0) throw std::runtime_error("wait_readable on a closed socket");
  if (buffer_.find('\n') != std::string::npos) return true;
  pollfd pfd{fd_, POLLIN, 0};
  const int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready < 0) {
    if (errno == EINTR) return false;  // caller re-checks its stop flag
    throw_errno("poll on unix socket");
  }
  return ready > 0;
}

UnixListener::UnixListener(const std::filesystem::path& path) : path_(path) {
  const sockaddr_un address = make_address(path);
  // A stale socket file from a SIGKILLed daemon would make bind() fail with
  // EADDRINUSE forever; only remove it after proving nothing accepts there.
  if (std::filesystem::exists(path)) {
    const int probe = make_socket();
    const int rc = ::connect(probe, reinterpret_cast<const sockaddr*>(&address),
                             sizeof(address));
    ::close(probe);
    if (rc == 0) {
      throw std::runtime_error("another daemon is already listening on " +
                               path.string());
    }
    std::error_code ignored;
    std::filesystem::remove(path, ignored);
  }
  const std::filesystem::path parent = path.parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent);
  fd_ = make_socket();
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&address),
             sizeof(address)) != 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("bind " + path.string());
  }
  if (::listen(fd_, 64) != 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    std::error_code ignored;
    std::filesystem::remove(path, ignored);
    errno = saved;
    throw_errno("listen " + path.string());
  }
}

UnixListener::~UnixListener() {
  if (fd_ >= 0) ::close(fd_);
  std::error_code ignored;
  std::filesystem::remove(path_, ignored);
}

LineSocket UnixListener::accept(int timeout_ms) {
  pollfd pfd{fd_, POLLIN, 0};
  for (;;) {
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) return LineSocket();  // let the caller re-check
      throw_errno("poll on " + path_.string());
    }
    if (ready == 0) return LineSocket();  // timeout
    const int client = ::accept(fd_, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      throw_errno("accept on " + path_.string());
    }
    return LineSocket(client);
  }
}

LineSocket connect_unix(const std::filesystem::path& path) {
  const sockaddr_un address = make_address(path);
  const int fd = make_socket();
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&address),
                sizeof(address)) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("connect " + path.string() +
                " (is `dsa_cli serve` running there?)");
  }
  return LineSocket(fd);
}

}  // namespace dsa::util
