#include "util/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace dsa::util::json {

std::string escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

const Value* Value::find(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

const char* Value::type_name() const noexcept {
  switch (type) {
    case Type::kNull: return "null";
    case Type::kBool: return "bool";
    case Type::kNumber: return "number";
    case Type::kString: return "string";
    case Type::kArray: return "array";
    case Type::kObject: return "object";
  }
  return "unknown";
}

namespace {

constexpr int kMaxDepth = 64;

class Parser {
 public:
  Parser(std::string_view text, std::string_view origin)
      : text_(text), origin_(origin) {}

  Value parse_document() {
    skip_whitespace();
    Value value = parse_value(0);
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError(std::string(origin_) + ":" + std::to_string(line_) +
                     ": " + message);
  }

  [[nodiscard]] bool at_end() const noexcept { return pos_ >= text_.size(); }

  [[nodiscard]] char peek() const {
    if (at_end()) fail("unexpected end of input");
    return text_[pos_];
  }

  char take() {
    const char c = peek();
    ++pos_;
    if (c == '\n') ++line_;
    return c;
  }

  void skip_whitespace() {
    while (!at_end()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\r' && c != '\n') break;
      take();
    }
  }

  void expect(char c) {
    if (take() != c) {
      --pos_;  // point the error at the offending character's line
      fail(std::string("expected '") + c + "'");
    }
  }

  void expect_keyword(std::string_view keyword) {
    for (char c : keyword) {
      if (at_end() || text_[pos_] != c) fail("invalid literal");
      take();
    }
  }

  Value parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    Value value;
    value.line = line_;
    const char c = peek();
    switch (c) {
      case '{': parse_object(value, depth); break;
      case '[': parse_array(value, depth); break;
      case '"':
        value.type = Value::Type::kString;
        value.text = parse_string();
        break;
      case 't':
        expect_keyword("true");
        value.type = Value::Type::kBool;
        value.boolean = true;
        break;
      case 'f':
        expect_keyword("false");
        value.type = Value::Type::kBool;
        value.boolean = false;
        break;
      case 'n':
        expect_keyword("null");
        value.type = Value::Type::kNull;
        break;
      default:
        if (c == '-' || (c >= '0' && c <= '9')) {
          value.type = Value::Type::kNumber;
          value.number = parse_number();
        } else {
          fail(std::string("unexpected character '") + c + "'");
        }
    }
    return value;
  }

  void parse_object(Value& value, int depth) {
    value.type = Value::Type::kObject;
    expect('{');
    skip_whitespace();
    if (peek() == '}') {
      take();
      return;
    }
    for (;;) {
      skip_whitespace();
      if (peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      if (value.find(key) != nullptr) {
        fail("duplicate object key \"" + key + "\"");
      }
      skip_whitespace();
      expect(':');
      skip_whitespace();
      value.members.emplace_back(std::move(key), parse_value(depth + 1));
      skip_whitespace();
      const char c = take();
      if (c == '}') return;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  void parse_array(Value& value, int depth) {
    value.type = Value::Type::kArray;
    expect('[');
    skip_whitespace();
    if (peek() == ']') {
      take();
      return;
    }
    for (;;) {
      skip_whitespace();
      value.items.push_back(parse_value(depth + 1));
      skip_whitespace();
      const char c = take();
      if (c == ']') return;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = take();
      if (c == '"') return out;
      if (c == '\n') fail("unescaped newline in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = take();
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': out += parse_unicode_escape(); break;
        default: fail(std::string("invalid escape '\\") + esc + "'");
      }
    }
  }

  std::string parse_unicode_escape() {
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = take();
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("invalid \\u escape");
      }
    }
    if (code >= 0xD800 && code <= 0xDFFF) {
      fail("surrogate \\u escapes are not supported");
    }
    // Encode the BMP code point as UTF-8.
    std::string out;
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
    return out;
  }

  double parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') take();
    if (!at_end() && peek() == '0') {
      take();
    } else {
      if (at_end() || peek() < '0' || peek() > '9') fail("invalid number");
      while (!at_end() && text_[pos_] >= '0' && text_[pos_] <= '9') take();
    }
    if (!at_end() && peek() == '.') {
      take();
      if (at_end() || peek() < '0' || peek() > '9') fail("invalid number");
      while (!at_end() && text_[pos_] >= '0' && text_[pos_] <= '9') take();
    }
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      take();
      if (!at_end() && (peek() == '+' || peek() == '-')) take();
      if (at_end() || peek() < '0' || peek() > '9') fail("invalid number");
      while (!at_end() && text_[pos_] >= '0' && text_[pos_] <= '9') take();
    }
    double parsed = 0.0;
    const auto result = std::from_chars(text_.data() + start,
                                        text_.data() + pos_, parsed);
    if (result.ec != std::errc() || result.ptr != text_.data() + pos_) {
      fail("invalid number");
    }
    return parsed;
  }

  std::string_view text_;
  std::string_view origin_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

}  // namespace

Value parse(std::string_view text, std::string_view origin) {
  return Parser(text, origin).parse_document();
}

Value parse_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot read JSON file: " + path.string());
  }
  std::ostringstream contents;
  contents << in.rdbuf();
  return parse(contents.str(), path.string());
}

bool Cursor::is_object() const noexcept {
  return value_->type == Value::Type::kObject;
}
bool Cursor::is_array() const noexcept {
  return value_->type == Value::Type::kArray;
}
bool Cursor::is_string() const noexcept {
  return value_->type == Value::Type::kString;
}
bool Cursor::is_number() const noexcept {
  return value_->type == Value::Type::kNumber;
}

void Cursor::fail(const std::string& message) const {
  throw SchemaError(origin_ + ":" + std::to_string(value_->line) + ": " +
                    path_ + ": " + message);
}

bool Cursor::has(const std::string& key) const {
  if (!is_object()) {
    fail(std::string("expected object, got ") + value_->type_name());
  }
  return value_->find(key) != nullptr;
}

Cursor Cursor::key(const std::string& key) const {
  if (!is_object()) {
    fail(std::string("expected object, got ") + value_->type_name());
  }
  const Value* member = value_->find(key);
  if (member == nullptr) fail("missing required key \"" + key + "\"");
  return Cursor(member, *this, "." + key);
}

std::optional<Cursor> Cursor::try_key(const std::string& key) const {
  if (!is_object()) {
    fail(std::string("expected object, got ") + value_->type_name());
  }
  const Value* member = value_->find(key);
  if (member == nullptr) return std::nullopt;
  return Cursor(member, *this, "." + key);
}

void Cursor::allow_only(
    std::initializer_list<std::string_view> allowed) const {
  if (!is_object()) {
    fail(std::string("expected object, got ") + value_->type_name());
  }
  for (const auto& [name, value] : value_->members) {
    (void)value;
    bool known = false;
    for (std::string_view candidate : allowed) {
      if (name == candidate) {
        known = true;
        break;
      }
    }
    if (!known) {
      std::string choices;
      for (std::string_view candidate : allowed) {
        if (!choices.empty()) choices += ", ";
        choices += candidate;
      }
      fail("unknown key \"" + name + "\" (allowed: " + choices + ")");
    }
  }
}

std::size_t Cursor::size() const {
  if (!is_array()) {
    fail(std::string("expected array, got ") + value_->type_name());
  }
  return value_->items.size();
}

Cursor Cursor::at(std::size_t i) const {
  if (!is_array()) {
    fail(std::string("expected array, got ") + value_->type_name());
  }
  if (i >= value_->items.size()) {
    fail("index " + std::to_string(i) + " outside array of size " +
         std::to_string(value_->items.size()));
  }
  return Cursor(&value_->items[i], *this, "[" + std::to_string(i) + "]");
}

std::string Cursor::as_string() const {
  if (!is_string()) {
    fail(std::string("expected string, got ") + value_->type_name());
  }
  return value_->text;
}

double Cursor::as_double() const {
  if (!is_number()) {
    fail(std::string("expected number, got ") + value_->type_name());
  }
  return value_->number;
}

std::int64_t Cursor::as_int() const {
  const double v = as_double();
  constexpr double kMaxExact = 9007199254740992.0;  // 2^53
  if (std::floor(v) != v || std::abs(v) > kMaxExact) {
    fail("expected integer, got " + std::to_string(v));
  }
  return static_cast<std::int64_t>(v);
}

bool Cursor::as_bool() const {
  if (value_->type != Value::Type::kBool) {
    fail(std::string("expected bool, got ") + value_->type_name());
  }
  return value_->boolean;
}

}  // namespace dsa::util::json
