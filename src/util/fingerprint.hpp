// Shared checkpoint-identity helpers used by every resume path (the PRA
// sweep's DSA_CHECKPOINT files and the scenario runner's manifests).
//
// A Fingerprint chains hash64 over every option that affects a
// computation's numbers; the result is baked into checkpoint/manifest
// filenames so a resume can never continue from incompatible data.
// exact_number() is the companion serializer: values that feed back into a
// resumed computation must round-trip doubles exactly, which the 10-digit
// display precision of format_number cannot do.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <string_view>

namespace dsa::util {

/// Order-sensitive hash accumulator: h = hash64(h ^ v) per ingredient,
/// seeded with hash64(salt). The chain is the exact scheme the PRA
/// checkpoint files have always used, so refactored callers keep their
/// on-disk fingerprints.
class Fingerprint {
 public:
  explicit Fingerprint(std::uint64_t salt = 0);

  Fingerprint& mix(std::uint64_t v);
  /// Hashes length then bytes, so "ab","c" != "a","bc".
  Fingerprint& mix(std::string_view text);
  /// Mixes the raw bit pattern (distinguishes -0.0 from 0.0).
  Fingerprint& mix_double(double v);

  [[nodiscard]] std::uint64_t value() const noexcept { return h_; }
  /// 16 lowercase hex digits, zero-padded.
  [[nodiscard]] std::string hex() const;

 private:
  std::uint64_t h_;
};

/// `<final_path>.partial-<16 hex digits>` — the sibling file a resumable
/// computation writes until the real output exists.
std::filesystem::path checkpoint_path(const std::filesystem::path& final_path,
                                      std::uint64_t fingerprint);

/// Shortest decimal string that round-trips `value` exactly
/// (std::to_chars); use for any number that feeds back into a resumed
/// computation.
std::string exact_number(double value);

}  // namespace dsa::util
