// Deterministic pseudo-random number generation for simulations.
//
// All experiments in this repository must be reproducible bit-for-bit
// regardless of thread scheduling, so every unit of simulation work derives
// its own Rng from a master seed plus a stable work-item identifier (see
// Rng::derive). The generator is xoshiro256** seeded via splitmix64 — fast,
// high quality, and independent of the standard library's unspecified
// distribution implementations.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace dsa::util {

/// splitmix64 step; used for seeding and for hash-combining seeds.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless 64-bit mix of a single value (splitmix64 finalizer).
constexpr std::uint64_t hash64(std::uint64_t x) noexcept {
  std::uint64_t s = x;
  return splitmix64(s);
}

/// xoshiro256** PRNG with helpers for the distributions the simulators need.
/// Satisfies UniformRandomBitGenerator, so it also works with <algorithm>.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four words of state from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    std::uint64_t s = seed;
    for (auto& word : state_) word = splitmix64(s);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64-bit output.
  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). Precondition: n > 0.
  /// Uses Lemire's unbiased multiply-shift rejection method.
  std::uint64_t below(std::uint64_t n) noexcept {
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  std::int64_t between(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) noexcept { return uniform() < p; }

  /// Derives an independent generator for a named work item. Streams for
  /// distinct (a, b, c) tuples are statistically independent, so parallel
  /// tournament encounters can each own a private stream.
  [[nodiscard]] Rng derive(std::uint64_t a, std::uint64_t b = 0,
                           std::uint64_t c = 0) const noexcept {
    std::uint64_t mix = state_[0] ^ rotl(state_[2], 13);
    mix ^= hash64(a) + 0x9e3779b97f4a7c15ULL;
    mix ^= hash64(b) * 0xff51afd7ed558ccdULL;
    mix ^= hash64(c) * 0xc4ceb9fe1a85ec53ULL;
    return Rng(hash64(mix));
  }

  /// Fisher–Yates shuffle of a random-access container.
  template <typename Container>
  void shuffle(Container& c) noexcept {
    const auto n = c.size();
    if (n < 2) return;
    for (std::size_t i = n - 1; i > 0; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i + 1));
      using std::swap;
      swap(c[i], c[j]);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// W independent xoshiro256** streams advanced in lockstep, state held as
/// structure-of-arrays (state_[word * width + lane]) so next_all()'s
/// per-lane update compiles to straight-line vector code (shifts, xors,
/// rotates — no lane interaction). Lane `w` seeded with seeds[w] produces
/// exactly the sequence Rng(seeds[w]) produces: next_all() advances every
/// lane by one draw, the scalar per-lane helpers advance just that lane,
/// and mixing the two access styles keeps each lane's stream identical to
/// its scalar twin as long as the per-lane draw order matches.
class LaneRng {
 public:
  using result_type = std::uint64_t;

  LaneRng() = default;
  explicit LaneRng(std::span<const std::uint64_t> seeds) { reset(seeds); }

  /// Re-seeds to `seeds.size()` lanes; lane w matches Rng(seeds[w]).
  void reset(std::span<const std::uint64_t> seeds) {
    width_ = seeds.size();
    state_.resize(4 * width_);
    for (std::size_t lane = 0; lane < width_; ++lane) {
      std::uint64_t s = seeds[lane];
      for (std::size_t word = 0; word < 4; ++word) {
        state_[word * width_ + lane] = splitmix64(s);
      }
    }
  }

  [[nodiscard]] std::size_t width() const noexcept { return width_; }

  /// One raw draw per lane into out[0, width): the vectorizable bulk path.
  void next_all(std::uint64_t* out) noexcept {
    std::uint64_t* s0 = state_.data();
    std::uint64_t* s1 = s0 + width_;
    std::uint64_t* s2 = s1 + width_;
    std::uint64_t* s3 = s2 + width_;
    for (std::size_t lane = 0; lane < width_; ++lane) {
      const std::uint64_t b = s1[lane];
      out[lane] = rotl(b * 5, 7) * 9;
      const std::uint64_t t = b << 17;
      s2[lane] ^= s0[lane];
      s3[lane] ^= b;
      s1[lane] ^= s2[lane];
      s0[lane] ^= s3[lane];
      s2[lane] ^= t;
      s3[lane] = rotl(s3[lane], 45);
    }
  }

  /// Next raw draw of one lane (the data-dependent scalar path).
  std::uint64_t next(std::size_t lane) noexcept {
    std::uint64_t& s0 = state_[0 * width_ + lane];
    std::uint64_t& s1 = state_[1 * width_ + lane];
    std::uint64_t& s2 = state_[2 * width_ + lane];
    std::uint64_t& s3 = state_[3 * width_ + lane];
    const std::uint64_t result = rotl(s1 * 5, 7) * 9;
    const std::uint64_t t = s1 << 17;
    s2 ^= s0;
    s3 ^= s1;
    s1 ^= s2;
    s0 ^= s3;
    s2 ^= t;
    s3 = rotl(s3, 45);
    return result;
  }

  /// Uniform double in [0, 1) on one lane; same mapping as Rng::uniform.
  double uniform(std::size_t lane) noexcept {
    return static_cast<double>(next(lane) >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, n) on one lane; Lemire rejection, draw-for-draw
  /// identical to Rng::below.
  std::uint64_t below(std::size_t lane, std::uint64_t n) noexcept {
    std::uint64_t x = next(lane);
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = next(lane);
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Bernoulli trial with success probability p on one lane.
  bool chance(std::size_t lane, double p) noexcept {
    return uniform(lane) < p;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::size_t width_ = 0;
  std::vector<std::uint64_t> state_;
};

}  // namespace dsa::util
