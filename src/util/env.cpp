#include "util/env.hpp"

#include <cstdlib>

namespace dsa::util {

namespace {
const char* raw(const char* name) {
  const char* value = std::getenv(name);
  return (value == nullptr || *value == '\0') ? nullptr : value;
}
}  // namespace

std::string env_string(const char* name, const std::string& fallback) {
  const char* value = raw(name);
  return value ? std::string(value) : fallback;
}

std::int64_t env_int(const char* name, std::int64_t fallback) {
  const char* value = raw(name);
  if (!value) return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(value, &end, 10);
  if (end == value || parsed < 0) return fallback;
  return static_cast<std::int64_t>(parsed);
}

double env_double(const char* name, double fallback) {
  const char* value = raw(name);
  if (!value) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  if (end == value) return fallback;
  return parsed;
}

bool env_flag(const char* name) {
  const char* value = raw(name);
  if (!value) return false;
  const std::string text(value);
  return text != "0" && text != "false" && text != "FALSE" && text != "no";
}

}  // namespace dsa::util
