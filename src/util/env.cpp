#include "util/env.hpp"

#include <cctype>
#include <cstdlib>
#include <stdexcept>

namespace dsa::util {

namespace {

const char* raw(const char* name) {
  const char* value = std::getenv(name);
  return (value == nullptr || *value == '\0') ? nullptr : value;
}

[[noreturn]] void fail(const char* name, const char* value,
                       const std::string& expected) {
  throw std::runtime_error(std::string(name) + "='" + value +
                           "' is invalid: expected " + expected);
}

// True when `rest` (the unparsed tail) is only whitespace.
bool only_space(const char* rest) {
  while (*rest != '\0') {
    if (!std::isspace(static_cast<unsigned char>(*rest))) return false;
    ++rest;
  }
  return true;
}

}  // namespace

std::string env_string(const char* name, const std::string& fallback) {
  const char* value = raw(name);
  return value ? std::string(value) : fallback;
}

std::int64_t env_int(const char* name, std::int64_t fallback) {
  const char* value = raw(name);
  if (!value) return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(value, &end, 10);
  if (end == value || !only_space(end)) {
    fail(name, value, "an integer");
  }
  if (parsed < 0) fail(name, value, "a non-negative integer");
  return static_cast<std::int64_t>(parsed);
}

double env_double(const char* name, double fallback) {
  const char* value = raw(name);
  if (!value) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  if (end == value || !only_space(end)) {
    fail(name, value, "a number");
  }
  return parsed;
}

bool env_flag(const char* name) {
  const char* value = raw(name);
  if (!value) return false;
  const std::string text(value);
  return text != "0" && text != "false" && text != "FALSE" && text != "no";
}

std::string env_enum(const char* name, const std::string& fallback,
                     std::initializer_list<const char*> allowed) {
  const char* value = raw(name);
  if (!value) return fallback;
  std::string choices;
  for (const char* choice : allowed) {
    if (value == std::string(choice)) return value;
    if (!choices.empty()) choices += '|';
    choices += choice;
  }
  fail(name, value, "one of " + choices);
}

}  // namespace dsa::util
