// Environment-variable configuration helpers. Bench binaries use these to
// scale experiments between "quick" defaults (minutes on a laptop) and the
// paper-fidelity settings (DSA_FULL=1), without recompiling.
//
// Parsing is strict: a variable that is SET but invalid (unparsable,
// negative where a count is expected, or outside an allowed enum) throws
// std::runtime_error naming the variable and the offending value, instead
// of silently falling back — a typo'd DSA_THREADS=1O must not quietly run
// a different experiment. Fallbacks apply only when unset or empty.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>

namespace dsa::util {

/// Returns the value of `name`, or `fallback` if unset/empty.
std::string env_string(const char* name, const std::string& fallback);

/// Returns `name` parsed as a non-negative integer, or `fallback` if
/// unset/empty. Throws std::runtime_error (with the offending value) when
/// set but unparsable, negative, or followed by trailing garbage.
std::int64_t env_int(const char* name, std::int64_t fallback);

/// Returns `name` parsed as a double, or `fallback` if unset/empty. Throws
/// std::runtime_error when set but unparsable or trailed by garbage.
double env_double(const char* name, double fallback);

/// True when the variable is set to something other than "0", "false", "".
bool env_flag(const char* name);

/// Returns the value of `name` when it is one of `allowed`, `fallback`
/// when unset/empty, and throws std::runtime_error (listing the choices)
/// otherwise. Used for e.g. DSA_ENGINE=sparse|dense.
std::string env_enum(const char* name, const std::string& fallback,
                     std::initializer_list<const char*> allowed);

}  // namespace dsa::util
