// Environment-variable configuration helpers. Bench binaries use these to
// scale experiments between "quick" defaults (minutes on a laptop) and the
// paper-fidelity settings (DSA_FULL=1), without recompiling.
#pragma once

#include <cstdint>
#include <string>

namespace dsa::util {

/// Returns the value of `name`, or `fallback` if unset/empty.
std::string env_string(const char* name, const std::string& fallback);

/// Returns `name` parsed as a non-negative integer, or `fallback` if
/// unset/empty/unparsable.
std::int64_t env_int(const char* name, std::int64_t fallback);

/// Returns `name` parsed as a double, or `fallback` if unset/unparsable.
double env_double(const char* name, double fallback);

/// True when the variable is set to something other than "0", "false", "".
bool env_flag(const char* name);

}  // namespace dsa::util
