#include "obs/telemetry.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <exception>
#include <fstream>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/profiler.hpp"
#include "obs/sketch/sketch.hpp"
#include "util/env.hpp"
#include "util/fingerprint.hpp"
#include "util/fs.hpp"
#include "util/json.hpp"
#include "util/proc_stat.hpp"
#include "util/thread_pool.hpp"

#ifndef _WIN32
#include <signal.h>
#include <unistd.h>
#endif

namespace dsa::obs {

namespace {

constexpr std::uint32_t kMinIntervalMs = 1;
constexpr std::uint32_t kMaxIntervalMs = 3'600'000;  // one hour
constexpr std::size_t kMaxShardList = 64;    // full id->state entries
constexpr std::size_t kMaxShardStrip = 512;  // one-char-per-shard strip
constexpr std::size_t kMaxPhasePaths = 8;    // top profiler paths per sample
constexpr std::size_t kMaxSketchNames = 16;  // sketch summaries per sample

std::int64_t unix_now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

std::int64_t current_pid() noexcept {
#ifndef _WIN32
  return static_cast<std::int64_t>(::getpid());
#else
  return 0;
#endif
}

char shard_char(ShardState state) noexcept {
  switch (state) {
    case ShardState::kTodo: return '.';
    case ShardState::kRunning: return '>';
    case ShardState::kDone: return '#';
    case ShardState::kFailed: return 'x';
    case ShardState::kResumed: return '=';
  }
  return '?';
}

// Tiny JSON-object builder: callers append `"key":value` pairs; commas and
// braces are handled here. Output is one line, schema-v1 style like the
// bench JSONs.
struct JsonObject {
  std::string out = "{";
  bool first = true;

  void sep(const char* key) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += key;
    out += "\":";
  }
  void str(const char* key, std::string_view value) {
    sep(key);
    out += '"';
    out += util::json::escape(value);
    out += '"';
  }
  void num(const char* key, std::uint64_t value) {
    sep(key);
    out += std::to_string(value);
  }
  void num(const char* key, std::int64_t value) {
    sep(key);
    out += std::to_string(value);
  }
  void num(const char* key, double value) {
    sep(key);
    out += util::exact_number(value);
  }
  void raw(const char* key, std::string_view json) {
    sep(key);
    out += json;
  }
  std::string finish() {
    out += '}';
    return std::move(out);
  }
};

}  // namespace

const char* to_string(ShardState state) noexcept {
  switch (state) {
    case ShardState::kTodo: return "todo";
    case ShardState::kRunning: return "running";
    case ShardState::kDone: return "done";
    case ShardState::kFailed: return "failed";
    case ShardState::kResumed: return "resumed";
  }
  return "unknown";
}

const char* to_string(RunHealth health) noexcept {
  switch (health) {
    case RunHealth::kRunning: return "RUNNING";
    case RunHealth::kStalled: return "STALLED";
    case RunHealth::kDead: return "DEAD";
    case RunHealth::kDone: return "DONE";
    case RunHealth::kFailed: return "FAILED";
  }
  return "UNKNOWN";
}

TelemetryOptions TelemetryOptions::from_environment() {
  TelemetryOptions options;
  options.enabled =
      util::env_enum("DSA_STATUS", "off", {"off", "on"}) == "on";
  const std::int64_t interval =
      util::env_int("DSA_STATUS_INTERVAL_MS", 1000);
  if (interval < kMinIntervalMs || interval > kMaxIntervalMs) {
    throw std::runtime_error("DSA_STATUS_INTERVAL_MS='" +
                             std::to_string(interval) +
                             "' is invalid: expected 1..3600000");
  }
  options.interval_ms = static_cast<std::uint32_t>(interval);
  options.dir = util::env_string("DSA_STATUS_DIR", "results");
  return options;
}

std::string sanitize_run_name(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    out += ok ? c : '_';
  }
  if (out.empty()) out = "run";
  return out;
}

// ---------------------------------------------------------------------------
// Run state + sampler core.

struct TelemetryRun::State {
  // Immutable after begin_run().
  std::string name;
  std::string kind;
  std::string output;
  std::string spec_fp_hex;  // empty when no fingerprint was supplied
  std::filesystem::path status_path;
  std::filesystem::path timeseries_path;
  std::int64_t pid = 0;
  std::int64_t started_unix_ms = 0;
  int uncaught_at_begin = 0;  // so the dtor can tell "done" from "unwinding"
  std::chrono::steady_clock::time_point started_steady;
  std::uint32_t interval_ms = 1000;
  std::shared_ptr<struct SamplerCore> core;

  // Hot, worker-facing: relaxed atomics only.
  std::atomic<std::uint64_t> done{0};
  std::atomic<std::uint64_t> total{0};
  std::atomic<std::uint64_t> failed{0};
  std::atomic<const util::ThreadPool*> pool{nullptr};
  std::atomic<bool> finished{false};

  // Rare, short-lived lock (phase changes, errors, per-job shard flips) —
  // never taken inside simulation hot loops.
  std::mutex mutex;
  std::string phase;
  std::string last_error;
  std::vector<std::string> shard_labels;
  std::vector<std::uint8_t> shard_states;

  // Sampler-private (guarded by SamplerCore::mutex).
  std::uint64_t seq = 0;
  std::uint64_t last_done = 0;
  std::int64_t last_sample_ms = 0;
  std::map<std::string, std::uint64_t> last_counters;
};

namespace {

using RunState = TelemetryRun::State;

}  // namespace

// Owns the registered runs and serializes every file write. Shared between
// Telemetry (sampler thread) and outstanding TelemetryRun handles, so a
// handle outliving its Telemetry (or vice versa) stays safe.
struct SamplerCore {
  std::mutex mutex;
  TelemetryOptions options;  // guarded by mutex
  std::vector<std::shared_ptr<RunState>> runs;  // guarded by mutex

  /// One full sampling pass over every live run. Never throws.
  void sample_all() {
    std::lock_guard lock(mutex);
    if (!options.enabled) return;
    sample_all_locked(/*final=*/false, /*ok=*/true, nullptr);
  }

  /// Final write for one run (state done/failed), then deregistration.
  void finish_run(const std::shared_ptr<RunState>& state, bool ok) {
    std::lock_guard lock(mutex);
    sample_all_locked(/*final=*/true, ok, state.get());
    runs.erase(std::remove(runs.begin(), runs.end(), state), runs.end());
  }

  /// Samples either every live run (target == nullptr) or just `target`.
  /// Shares one registry/profiler/proc-stat read across runs.
  void sample_all_locked(bool final, bool ok, RunState* target) {
    const std::int64_t now_ms = unix_now_ms();
    const auto steady_now = std::chrono::steady_clock::now();
    const MetricsSnapshot snap = Registry::global().snapshot();
    const util::ProcStat mem = util::read_proc_stat();
    const PhaseReport phases = Profiler::global().report();
    for (const auto& run : runs) {
      if (target != nullptr && run.get() != target) continue;
      if (target == nullptr && run->finished.load(std::memory_order_relaxed))
        continue;
      try {
        write_sample(*run, final, ok, now_ms, steady_now, snap, mem, phases);
      } catch (...) {
        // Telemetry must never take the experiment down: a full disk or
        // unwritable status dir silently loses samples, nothing else.
      }
    }
    // Deregistration is finish_run's job alone (plus begin_run's supersede
    // prune). The periodic pass must never drop a finished run itself:
    // `finished` flips before finish_run takes this mutex, so a pass landing
    // in that window would deregister the run and swallow its final
    // done/failed heartbeat.
  }

  void write_sample(RunState& run, bool final, bool ok, std::int64_t now_ms,
                    std::chrono::steady_clock::time_point steady_now,
                    const MetricsSnapshot& snap, const util::ProcStat& mem,
                    const PhaseReport& phases) {
    const double uptime_sec =
        std::chrono::duration<double>(steady_now - run.started_steady).count();
    const std::uint64_t done = run.done.load(std::memory_order_relaxed);
    const std::uint64_t total = run.total.load(std::memory_order_relaxed);
    const std::uint64_t failed = run.failed.load(std::memory_order_relaxed);
    const auto* pool = run.pool.load(std::memory_order_relaxed);
    const std::uint64_t queue_depth = pool != nullptr ? pool->pending_jobs() : 0;

    // Windowed rate for display, cumulative average for the ETA (smoother
    // over bursty job completion).
    const double avg_rate = uptime_sec > 0.0 ? done / uptime_sec : 0.0;
    double rate = avg_rate;
    if (run.last_sample_ms > 0 && now_ms > run.last_sample_ms &&
        done >= run.last_done) {
      rate = (done - run.last_done) /
             ((now_ms - run.last_sample_ms) / 1000.0);
    }
    double eta_sec = -1.0;
    if (!final && total > done && avg_rate > 0.0) {
      eta_sec = (total - done) / avg_rate;
    }
    if (final) eta_sec = 0.0;

    // Counter deltas since this run's previous sample.
    std::map<std::string, std::uint64_t> counters;
    for (const auto& c : snap.counters) {
      if (c.value != 0) counters.emplace(c.name, c.value);
    }
    std::string counters_json = "{";
    std::string deltas_json = "{";
    {
      bool first_c = true;
      bool first_d = true;
      for (const auto& [cname, value] : counters) {
        if (!first_c) counters_json += ',';
        first_c = false;
        counters_json += '"';
        counters_json += util::json::escape(cname);
        counters_json += "\":";
        counters_json += std::to_string(value);
        const auto prev = run.last_counters.find(cname);
        const std::uint64_t before =
            prev == run.last_counters.end() ? 0 : prev->second;
        if (value > before) {
          if (!first_d) deltas_json += ',';
          first_d = false;
          deltas_json += '"';
          deltas_json += util::json::escape(cname);
          deltas_json += "\":";
          deltas_json += std::to_string(value - before);
        }
      }
    }
    counters_json += '}';
    deltas_json += '}';

    std::string gauges_json = "{";
    {
      bool first_g = true;
      for (const auto& g : snap.gauges) {
        if (!first_g) gauges_json += ',';
        first_g = false;
        gauges_json += '"';
        gauges_json += util::json::escape(g.name);
        gauges_json += "\":";
        gauges_json += util::exact_number(g.value);
      }
    }
    gauges_json += '}';

    // Swarm-health sketch summaries: constant-size per sample regardless of
    // population. One object per registered summary name; a quantile sketch
    // contributes the configured quantile list, a moments accumulator the
    // min/max/mean/stddev envelope (a name registered as both merges into
    // one object). Empty summaries and the section itself are omitted so
    // runs without sketch feeds keep their historical schema bytes.
    std::string sketches_json;
    {
      const SketchRegistrySnapshot sketch_snap =
          SketchRegistry::global().snapshot();
      const std::vector<QuantileSpec> quantiles = export_quantiles();
      std::map<std::string, std::pair<const SketchSnapshot*,
                                      const MomentsSnapshot*>> by_name;
      for (const auto& sketch : sketch_snap.sketches) {
        if (sketch.count() > 0) by_name[sketch.name].first = &sketch;
      }
      for (const auto& moments : sketch_snap.moments) {
        if (moments.count > 0) by_name[moments.name].second = &moments;
      }
      std::size_t emitted = 0;
      std::string body = "{";
      bool first_entry = true;
      for (const auto& [sname, entry] : by_name) {
        if (emitted >= kMaxSketchNames) break;
        ++emitted;
        const auto* sketch = entry.first;
        const auto* moments = entry.second;
        JsonObject object;
        object.num("count", sketch != nullptr ? sketch->count()
                                              : moments->count);
        if (sketch != nullptr) {
          for (const QuantileSpec& spec : quantiles) {
            object.num(spec.label.c_str(), sketch->quantile(spec.q));
          }
        }
        if (moments != nullptr) {
          object.num("min", moments->min);
          object.num("max", moments->max);
          object.num("mean", moments->mean());
          object.num("stddev", moments->stddev());
        }
        if (!first_entry) body += ',';
        first_entry = false;
        body += '"';
        body += util::json::escape(sname);
        body += "\":";
        body += object.finish();
      }
      body += '}';
      if (!first_entry) sketches_json = std::move(body);
    }

    // Copy the rarely-written strings/shards under the run's own lock.
    std::string phase;
    std::string last_error;
    std::vector<std::string> shard_labels;
    std::vector<std::uint8_t> shard_states;
    {
      std::lock_guard run_lock(run.mutex);
      phase = run.phase;
      last_error = run.last_error;
      if (run.shard_states.size() <= kMaxShardList) {
        shard_labels = run.shard_labels;
      }
      shard_states = run.shard_states;
    }

    std::uint64_t shard_counts[5] = {0, 0, 0, 0, 0};
    std::string strip;
    strip.reserve(std::min(shard_states.size(), kMaxShardStrip));
    for (std::size_t i = 0; i < shard_states.size(); ++i) {
      const auto s = shard_states[i] <= 4 ? shard_states[i] : 0;
      ++shard_counts[s];
      if (i < kMaxShardStrip)
        strip += shard_char(static_cast<ShardState>(s));
    }

    const char* state_str = "running";
    if (final) state_str = ok ? "done" : "failed";

    // (a) Heartbeat: one atomically replaced JSON object.
    JsonObject heartbeat;
    heartbeat.str("type", "status");
    heartbeat.num("schema", std::uint64_t{1});
    heartbeat.str("name", run.name);
    heartbeat.str("kind", run.kind);
    heartbeat.num("pid", run.pid);
    heartbeat.str("state", state_str);
    heartbeat.num("seq", run.seq);
    heartbeat.str("spec_fp", run.spec_fp_hex);
    heartbeat.str("output", run.output);
    heartbeat.str("phase", phase);
    heartbeat.num("interval_ms", std::uint64_t{run.interval_ms});
    heartbeat.num("started_unix_ms", run.started_unix_ms);
    heartbeat.num("timestamp_unix_ms", now_ms);
    heartbeat.num("uptime_sec", uptime_sec);
    {
      JsonObject jobs;
      jobs.num("done", done);
      jobs.num("total", total);
      jobs.num("failed", failed);
      heartbeat.raw("jobs", jobs.finish());
    }
    heartbeat.num("rate_per_sec", rate);
    heartbeat.num("eta_sec", eta_sec);
    heartbeat.num("rss_kb", mem.rss_kb);
    heartbeat.num("peak_rss_kb", mem.peak_rss_kb);
    heartbeat.num("queue_depth", queue_depth);
    heartbeat.str("last_error", last_error);
    if (!shard_states.empty()) {
      JsonObject counts;
      for (int s = 0; s < 5; ++s) {
        counts.num(to_string(static_cast<ShardState>(s)), shard_counts[s]);
      }
      heartbeat.raw("shard_counts", counts.finish());
      heartbeat.str("shard_strip", strip);
      if (!shard_labels.empty()) {
        std::string shards = "[";
        for (std::size_t i = 0; i < shard_labels.size(); ++i) {
          if (i > 0) shards += ',';
          JsonObject shard;
          shard.str("id", shard_labels[i]);
          shard.str("state",
                    to_string(static_cast<ShardState>(
                        shard_states[i] <= 4 ? shard_states[i] : 0)));
          shards += shard.finish();
        }
        shards += ']';
        heartbeat.raw("shards", shards);
      }
    }
    heartbeat.raw("counters", counters_json);
    heartbeat.raw("gauges", gauges_json);
    if (!sketches_json.empty()) heartbeat.raw("sketches", sketches_json);
    util::atomic_write(run.status_path, heartbeat.finish() + "\n");

    // (b) Time-series: append-only, so the series survives (and spans)
    // crash/resume cycles. Skip the begin_run bootstrap sample (seq 0 is
    // the baseline that zeroes the counter deltas).
    if (run.seq > 0 || final) {
      JsonObject line;
      line.str("type", "telemetry");
      line.num("schema", std::uint64_t{1});
      line.str("name", run.name);
      line.num("pid", run.pid);
      line.num("seq", run.seq);
      line.num("timestamp_unix_ms", now_ms);
      line.num("uptime_sec", uptime_sec);
      line.str("phase", phase);
      line.num("jobs_done", done);
      line.num("jobs_total", total);
      line.num("jobs_failed", failed);
      line.num("rate_per_sec", rate);
      line.num("rss_kb", mem.rss_kb);
      line.num("peak_rss_kb", mem.peak_rss_kb);
      line.num("queue_depth", queue_depth);
      line.raw("counters_delta", deltas_json);
      line.raw("gauges", gauges_json);
      {
        // Top phases by accumulated wall time; enough for a live flame
        // summary without unbounded line growth.
        PhaseReport top(phases);
        std::stable_sort(top.begin(), top.end(),
                         [](const PhaseStat& a, const PhaseStat& b) {
                           return a.total_ms > b.total_ms;
                         });
        if (top.size() > kMaxPhasePaths) top.resize(kMaxPhasePaths);
        JsonObject phase_obj;
        for (const auto& p : top) {
          phase_obj.num(p.path.c_str(), p.total_ms);
        }
        line.raw("phases_ms", phase_obj.finish());
      }
      if (!sketches_json.empty()) line.raw("sketches", sketches_json);
      std::ofstream series(run.timeseries_path,
                           std::ios::app | std::ios::binary);
      if (series) {
        series << line.finish() << '\n';
        series.flush();
      }
    }

    run.last_counters = std::move(counters);
    run.last_done = done;
    run.last_sample_ms = now_ms;
    ++run.seq;
  }
};

// ---------------------------------------------------------------------------
// TelemetryRun: thin forwarding shell around State.

TelemetryRun::TelemetryRun(TelemetryRun&& other) noexcept
    : state_(std::move(other.state_)) {}

TelemetryRun& TelemetryRun::operator=(TelemetryRun&& other) noexcept {
  if (this != &other) {
    finish(true);
    state_ = std::move(other.state_);
  }
  return *this;
}

TelemetryRun::~TelemetryRun() {
  // A handle destroyed by stack unwinding marks the run failed; a normal
  // scope exit marks it done.
  if (state_ != nullptr) {
    finish(std::uncaught_exceptions() <= state_->uncaught_at_begin);
  }
}

void TelemetryRun::set_phase(std::string_view phase) {
  if (!state_) return;
  std::lock_guard lock(state_->mutex);
  state_->phase.assign(phase);
}

void TelemetryRun::add_done(std::uint64_t n) {
  if (!state_) return;
  state_->done.fetch_add(n, std::memory_order_relaxed);
}

void TelemetryRun::update_done(std::uint64_t done) {
  if (!state_) return;
  std::uint64_t current = state_->done.load(std::memory_order_relaxed);
  while (done > current &&
         !state_->done.compare_exchange_weak(current, done,
                                             std::memory_order_relaxed)) {
  }
}

void TelemetryRun::add_failed(std::uint64_t n) {
  if (!state_) return;
  state_->failed.fetch_add(n, std::memory_order_relaxed);
}

void TelemetryRun::set_total(std::uint64_t total) {
  if (!state_) return;
  state_->total.store(total, std::memory_order_relaxed);
}

void TelemetryRun::set_last_error(std::string_view message) {
  if (!state_) return;
  std::lock_guard lock(state_->mutex);
  state_->last_error.assign(message);
}

void TelemetryRun::watch_pool(const util::ThreadPool* pool) {
  if (!state_) return;
  state_->pool.store(pool, std::memory_order_relaxed);
}

void TelemetryRun::init_shards(std::vector<std::string> labels) {
  if (!state_) return;
  std::lock_guard lock(state_->mutex);
  state_->shard_states.assign(labels.size(),
                              static_cast<std::uint8_t>(ShardState::kTodo));
  state_->shard_labels = std::move(labels);
}

void TelemetryRun::set_shard_state(std::size_t index, ShardState state) {
  if (!state_) return;
  std::lock_guard lock(state_->mutex);
  if (index < state_->shard_states.size()) {
    state_->shard_states[index] = static_cast<std::uint8_t>(state);
  }
}

void TelemetryRun::finish(bool ok) {
  if (!state_) return;
  std::shared_ptr<State> state = std::move(state_);
  if (state->finished.exchange(true)) return;
  // Make sure the pool pointer cannot dangle past this point.
  state->pool.store(nullptr, std::memory_order_relaxed);
  if (state->core) state->core->finish_run(state, ok);
}

// ---------------------------------------------------------------------------
// Telemetry: sampler thread lifecycle.

struct Telemetry::Impl {
  std::shared_ptr<SamplerCore> core = std::make_shared<SamplerCore>();
  std::atomic<bool> enabled{false};

  // Sampler-thread lifecycle; lifecycle_mutex serializes configure() calls,
  // wake_mutex/wake guard the stop flag the thread sleeps on.
  std::mutex lifecycle_mutex;
  std::thread sampler;
  std::mutex wake_mutex;
  std::condition_variable wake;
  bool stop_requested = false;

  void stop_thread() {
    if (!sampler.joinable()) return;
    {
      std::lock_guard lock(wake_mutex);
      stop_requested = true;
    }
    wake.notify_all();
    sampler.join();
  }

  void sampler_loop() {
    for (;;) {
      std::uint32_t interval_ms;
      {
        std::lock_guard lock(core->mutex);
        interval_ms = core->options.interval_ms;
      }
      {
        std::unique_lock lock(wake_mutex);
        wake.wait_for(lock, std::chrono::milliseconds(interval_ms),
                      [this] { return stop_requested; });
        if (stop_requested) return;
      }
      core->sample_all();
    }
  }
};

Telemetry::Telemetry() : impl_(std::make_unique<Impl>()) {}

Telemetry::~Telemetry() {
  std::lock_guard lock(impl_->lifecycle_mutex);
  impl_->stop_thread();
}

Telemetry& Telemetry::global() {
  static Telemetry* instance = new Telemetry();  // leaked: outlives exit paths
  return *instance;
}

void Telemetry::configure(const TelemetryOptions& options) {
  std::lock_guard lifecycle(impl_->lifecycle_mutex);
  impl_->stop_thread();
  {
    std::lock_guard lock(impl_->core->mutex);
    impl_->core->options = options;
  }
  impl_->enabled.store(options.enabled, std::memory_order_relaxed);
  if (!options.enabled) return;
  // Telemetry feeds off the metrics registry and profiler; make sure they
  // are recording (no-op when compiled out — heartbeats still carry
  // progress/RSS, just with empty counter sections).
  set_enabled(true);
  {
    std::lock_guard lock(impl_->wake_mutex);
    impl_->stop_requested = false;
  }
  Impl* impl = impl_.get();
  impl_->sampler = std::thread([impl] { impl->sampler_loop(); });
}

bool Telemetry::enabled() const noexcept {
  return impl_->enabled.load(std::memory_order_relaxed);
}

TelemetryOptions Telemetry::options() const {
  std::lock_guard lock(impl_->core->mutex);
  return impl_->core->options;
}

TelemetryRun Telemetry::begin_run(RunInfo info) {
  if (!enabled()) return {};
  auto state = std::make_shared<TelemetryRun::State>();
  state->core = impl_->core;
  state->name = sanitize_run_name(info.name);
  state->kind = std::move(info.kind);
  state->output = std::move(info.output);
  if (info.spec_fingerprint != 0) {
    char hex[17];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(info.spec_fingerprint));
    state->spec_fp_hex = hex;
  }
  state->pid = current_pid();
  state->uncaught_at_begin = std::uncaught_exceptions();
  state->started_unix_ms = unix_now_ms();
  state->started_steady = std::chrono::steady_clock::now();
  state->total.store(info.jobs_total, std::memory_order_relaxed);

  std::lock_guard lock(impl_->core->mutex);
  state->interval_ms = impl_->core->options.interval_ms;
  const auto& dir = impl_->core->options.dir;
  state->status_path = dir / (state->name + ".status.json");
  state->timeseries_path =
      dir / ("STATUS_" + state->name + ".timeseries.jsonl");
  try {
    std::filesystem::create_directories(dir);
  } catch (...) {
  }
  // A restarted run supersedes the previous registration under the same
  // heartbeat path (resume after crash within one process lifetime). Only
  // path identity may deregister here: pruning on `finished` would race the
  // owning handle's finish_run (the flag flips before it takes the core
  // mutex) and swallow that run's final done/failed heartbeat.
  auto& runs = impl_->core->runs;
  runs.erase(std::remove_if(runs.begin(), runs.end(),
                            [&](const auto& r) {
                              return r->status_path == state->status_path;
                            }),
             runs.end());
  runs.push_back(state);
  // Bootstrap sample: the heartbeat exists immediately (fast runs may
  // finish inside one interval) and counter deltas get their baseline.
  impl_->core->sample_all_locked(/*final=*/false, /*ok=*/true, state.get());
  return TelemetryRun(state);
}

void Telemetry::sample_now() { impl_->core->sample_all(); }

// ---------------------------------------------------------------------------
// Reader side.

namespace {

const util::json::Value* find_field(const util::json::Value& root,
                                    const char* key) {
  return root.find(key);
}

std::string read_string(const util::json::Value& root, const char* key) {
  const auto* v = find_field(root, key);
  return v != nullptr && v->type == util::json::Value::Type::kString ? v->text
                                                                     : "";
}

double read_double(const util::json::Value& root, const char* key,
                   double fallback = 0.0) {
  const auto* v = find_field(root, key);
  return v != nullptr && v->type == util::json::Value::Type::kNumber
             ? v->number
             : fallback;
}

std::uint64_t read_u64(const util::json::Value& root, const char* key) {
  const double d = read_double(root, key);
  return d > 0.0 ? static_cast<std::uint64_t>(d) : 0;
}

std::int64_t read_i64(const util::json::Value& root, const char* key) {
  return static_cast<std::int64_t>(read_double(root, key));
}

}  // namespace

StatusFile load_status_file(const std::filesystem::path& path) {
  const util::json::Value root = util::json::parse_file(path);
  if (root.type != util::json::Value::Type::kObject ||
      read_string(root, "type") != "status") {
    throw std::runtime_error(path.string() +
                             ": not a telemetry status file (expected "
                             "{\"type\":\"status\",...})");
  }
  StatusFile status;
  status.path = path;
  status.schema = static_cast<int>(read_i64(root, "schema"));
  status.name = read_string(root, "name");
  status.kind = read_string(root, "kind");
  status.state = read_string(root, "state");
  status.phase = read_string(root, "phase");
  status.last_error = read_string(root, "last_error");
  status.output = read_string(root, "output");
  status.spec_fp = read_string(root, "spec_fp");
  status.pid = read_i64(root, "pid");
  status.seq = read_u64(root, "seq");
  status.started_unix_ms = read_i64(root, "started_unix_ms");
  status.timestamp_unix_ms = read_i64(root, "timestamp_unix_ms");
  status.interval_ms = static_cast<std::uint32_t>(read_u64(root, "interval_ms"));
  status.uptime_sec = read_double(root, "uptime_sec");
  if (const auto* jobs = find_field(root, "jobs");
      jobs != nullptr && jobs->type == util::json::Value::Type::kObject) {
    status.done = read_u64(*jobs, "done");
    status.total = read_u64(*jobs, "total");
    status.failed = read_u64(*jobs, "failed");
  }
  status.rate_per_sec = read_double(root, "rate_per_sec");
  status.eta_sec = read_double(root, "eta_sec", -1.0);
  status.rss_kb = read_u64(root, "rss_kb");
  status.peak_rss_kb = read_u64(root, "peak_rss_kb");
  status.queue_depth = read_u64(root, "queue_depth");
  if (const auto* shards = find_field(root, "shards");
      shards != nullptr && shards->type == util::json::Value::Type::kArray) {
    for (const auto& item : shards->items) {
      if (item.type != util::json::Value::Type::kObject) continue;
      status.shards.emplace_back(read_string(item, "id"),
                                 read_string(item, "state"));
    }
  }
  if (const auto* counts = find_field(root, "shard_counts");
      counts != nullptr && counts->type == util::json::Value::Type::kObject) {
    for (const auto& [key, value] : counts->members) {
      if (value.type == util::json::Value::Type::kNumber) {
        status.shard_counts[key] =
            static_cast<std::uint64_t>(value.number);
      }
    }
  }
  if (const auto* counters = find_field(root, "counters");
      counters != nullptr &&
      counters->type == util::json::Value::Type::kObject) {
    for (const auto& [key, value] : counters->members) {
      if (value.type == util::json::Value::Type::kNumber) {
        status.counters[key] = static_cast<std::uint64_t>(value.number);
      }
    }
  }
  if (const auto* gauges = find_field(root, "gauges");
      gauges != nullptr && gauges->type == util::json::Value::Type::kObject) {
    for (const auto& [key, value] : gauges->members) {
      if (value.type == util::json::Value::Type::kNumber) {
        status.gauges[key] = value.number;
      }
    }
  }
  if (const auto* sketches = find_field(root, "sketches");
      sketches != nullptr &&
      sketches->type == util::json::Value::Type::kObject) {
    for (const auto& [sketch_name, fields] : sketches->members) {
      if (fields.type != util::json::Value::Type::kObject) continue;
      auto& into = status.sketches[sketch_name];
      for (const auto& [key, value] : fields.members) {
        if (value.type == util::json::Value::Type::kNumber) {
          into[key] = value.number;
        }
      }
    }
  }
  return status;
}

std::vector<TimeseriesSample> load_timeseries(
    const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error(path.string() + ": cannot open time-series file");
  }
  std::vector<TimeseriesSample> samples;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    util::json::Value root;
    try {
      root = util::json::parse(line);
    } catch (const std::exception& error) {
      throw std::runtime_error(path.string() + ":" + std::to_string(line_no) +
                               ": " + error.what());
    }
    if (root.type != util::json::Value::Type::kObject ||
        read_string(root, "type") != "telemetry") {
      continue;
    }
    TimeseriesSample sample;
    sample.seq = read_u64(root, "seq");
    sample.uptime_sec = read_double(root, "uptime_sec");
    sample.jobs_done = read_u64(root, "jobs_done");
    if (const auto* deltas = find_field(root, "counters_delta");
        deltas != nullptr && deltas->type == util::json::Value::Type::kObject) {
      for (const auto& [key, value] : deltas->members) {
        if (value.type == util::json::Value::Type::kNumber) {
          sample.counters_delta[key] =
              static_cast<std::uint64_t>(value.number);
        }
      }
    }
    if (const auto* gauges = find_field(root, "gauges");
        gauges != nullptr && gauges->type == util::json::Value::Type::kObject) {
      for (const auto& [key, value] : gauges->members) {
        if (value.type == util::json::Value::Type::kNumber) {
          sample.gauges[key] = value.number;
        }
      }
    }
    if (const auto* sketches = find_field(root, "sketches");
        sketches != nullptr &&
        sketches->type == util::json::Value::Type::kObject) {
      for (const auto& [sketch_name, fields] : sketches->members) {
        if (fields.type != util::json::Value::Type::kObject) continue;
        auto& into = sample.sketches[sketch_name];
        for (const auto& [key, value] : fields.members) {
          if (value.type == util::json::Value::Type::kNumber) {
            into[key] = value.number;
          }
        }
      }
    }
    samples.push_back(std::move(sample));
  }
  return samples;
}

bool pid_alive(std::int64_t pid) noexcept {
  if (pid <= 0) return false;
#ifndef _WIN32
  if (::kill(static_cast<pid_t>(pid), 0) == 0) return true;
  return errno == EPERM;
#else
  return false;
#endif
}

RunHealth classify_status(const StatusFile& status, std::int64_t now_unix_ms,
                          bool process_alive) noexcept {
  if (status.state == "done") return RunHealth::kDone;
  if (status.state == "failed") return RunHealth::kFailed;
  if (!process_alive) return RunHealth::kDead;
  const std::int64_t interval =
      status.interval_ms > 0 ? status.interval_ms : 1000;
  if (now_unix_ms - status.timestamp_unix_ms > 3 * interval) {
    return RunHealth::kStalled;
  }
  return RunHealth::kRunning;
}

RunHealth classify_status(const StatusFile& status) {
  return classify_status(status, unix_now_ms(), pid_alive(status.pid));
}

std::vector<std::filesystem::path> find_status_files(
    const std::filesystem::path& target) {
  std::vector<std::filesystem::path> found;
  std::error_code ec;
  if (std::filesystem::is_regular_file(target, ec)) {
    found.push_back(target);
    return found;
  }
  if (!std::filesystem::is_directory(target, ec)) return found;
  for (const auto& entry :
       std::filesystem::directory_iterator(target, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    constexpr std::string_view kSuffix = ".status.json";
    if (name.size() > kSuffix.size() &&
        name.compare(name.size() - kSuffix.size(), kSuffix.size(),
                     kSuffix) == 0) {
      found.push_back(entry.path());
    }
  }
  std::sort(found.begin(), found.end());
  return found;
}

}  // namespace dsa::obs
