#include "obs/progress.hpp"

#include <cstdio>

namespace dsa::obs {

namespace {
constexpr std::chrono::milliseconds kRedrawInterval{100};
}  // namespace

ProgressMeter::ProgressMeter(std::string label, std::size_t total,
                             bool enabled)
    : label_(std::move(label)),
      total_(total),
      enabled_(enabled),
      start_(std::chrono::steady_clock::now()),
      last_draw_(start_ - kRedrawInterval) {}

ProgressMeter::~ProgressMeter() { finish(); }

void ProgressMeter::update(std::size_t done) {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (finished_ || done <= best_done_) return;
  best_done_ = done;
  const auto now = std::chrono::steady_clock::now();
  if (now - last_draw_ < kRedrawInterval && done < total_) return;
  last_draw_ = now;
  draw(done, /*final_line=*/false);
}

void ProgressMeter::finish() {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (finished_) return;
  finished_ = true;
  if (!drew_) return;  // never showed anything; stay silent
  draw(best_done_, /*final_line=*/true);
}

void ProgressMeter::draw(std::size_t done, bool final_line) {
  const double elapsed = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start_)
                             .count();
  const double rate = elapsed > 0.0 ? static_cast<double>(done) / elapsed : 0.0;
  const double pct =
      total_ > 0 ? 100.0 * static_cast<double>(done) /
                       static_cast<double>(total_)
                 : 100.0;
  char eta[32] = "--:--";
  if (rate > 0.0 && done < total_) {
    const double remaining = static_cast<double>(total_ - done) / rate;
    std::snprintf(eta, sizeof(eta), "%02d:%02d",
                  static_cast<int>(remaining) / 60,
                  static_cast<int>(remaining) % 60);
  }
  std::fprintf(stderr, "\r  %s: %zu/%zu (%5.1f%%)  %.1f/s  ETA %s   ",
               label_.c_str(), done, total_, pct, rate, eta);
  if (final_line) std::fputc('\n', stderr);
  std::fflush(stderr);
  drew_ = true;
}

}  // namespace dsa::obs
