// Thread-sharded metrics registry: counters, gauges, and fixed-bucket
// histograms.
//
// Write path: each thread gets its own shard (created on first touch, owned
// by the registry), and a counter add or histogram observe is one relaxed
// atomic RMW on that shard — no locks, no cross-thread cache-line traffic.
// Gauges are last-write-wins process-global values (set rarely, read at
// snapshot time), so they live in the registry directly.
//
// Read path: snapshot() takes the registry mutex, sums every shard, and
// returns a plain-value MetricsSnapshot. Shards are never destroyed before
// the registry is, so totals survive thread exit (a pool worker's counts
// stay merged after the pool is torn down).
//
// Handles (Counter/Gauge/Histogram) are cheap POD-ish values; register once
// (name-idempotent) and keep them next to the hot loop. All operations are
// safe on a default-constructed handle (they no-op), so instrumented code
// can hoist handles unconditionally and only pay when observability is on.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

namespace dsa::obs {

class Registry;

/// Monotone event counter (uint64 adds).
class Counter {
 public:
  Counter() = default;
  void add(std::uint64_t delta) const noexcept;
  void increment() const noexcept { add(1); }

 private:
  friend class Registry;
  Counter(Registry* registry, std::size_t id) : registry_(registry), id_(id) {}
  Registry* registry_ = nullptr;
  std::size_t id_ = 0;
};

/// Last-write-wins double, plus an accumulate form for double-valued totals
/// (e.g. KB lost) that have no integral counter representation.
class Gauge {
 public:
  Gauge() = default;
  void set(double value) const noexcept;
  void add(double delta) const noexcept;

 private:
  friend class Registry;
  Gauge(Registry* registry, std::size_t id) : registry_(registry), id_(id) {}
  Registry* registry_ = nullptr;
  std::size_t id_ = 0;
};

/// Fixed-bucket histogram: bucket i counts observations <= bounds[i], plus
/// one overflow bucket; count and sum ride along for mean/rate math.
class Histogram {
 public:
  Histogram() = default;
  void observe(double value) const noexcept;

 private:
  friend class Registry;
  Histogram(Registry* registry, std::size_t id)
      : registry_(registry), id_(id) {}
  Registry* registry_ = nullptr;
  std::size_t id_ = 0;
};

/// Point-in-time merged view of every metric; plain values, safe to keep.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    double value = 0.0;
  };
  struct HistogramValue {
    std::string name;
    std::vector<double> bounds;          // upper bounds, ascending
    std::vector<std::uint64_t> buckets;  // bounds.size() + 1 (overflow last)
    std::uint64_t count = 0;
    double sum = 0.0;

    /// Quantile estimate (q in [0, 1]) by cumulative bucket walk with
    /// linear interpolation inside the covering bucket (bucket i spans
    /// (bounds[i-1], bounds[i]], the first bucket starts at 0). Mass in
    /// the overflow bucket clamps to bounds.back() — a fixed-bucket
    /// histogram has no upper edge to interpolate against. Returns 0 for
    /// an empty histogram.
    [[nodiscard]] double quantile(double q) const;
  };

  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  /// Value of a named counter; 0 when absent (convenient in tests/reports).
  [[nodiscard]] std::uint64_t counter_value(std::string_view name) const;
  /// Value of a named gauge; 0.0 when absent.
  [[nodiscard]] double gauge_value(std::string_view name) const;

  /// One JSON object per line: {"type":"counter","name":...,"value":...},
  /// {"type":"gauge",...}, {"type":"histogram",...}.
  [[nodiscard]] std::string to_jsonl() const;

  /// to_jsonl() written via util::atomic_write (never a torn file).
  void save_jsonl(const std::filesystem::path& path) const;
};

/// The registry. Most code uses the process-wide `global()` instance;
/// independent instances exist for tests.
class Registry {
 public:
  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  static Registry& global();

  /// Registers (or finds) a metric by name. Idempotent: the same name
  /// returns a handle to the same metric. A histogram re-registration must
  /// pass identical bounds (throws std::invalid_argument otherwise); bounds
  /// must be non-empty and strictly ascending.
  Counter counter(std::string_view name);
  Gauge gauge(std::string_view name);
  Histogram histogram(std::string_view name, std::vector<double> bounds);

  /// Merged totals across all shards, metrics in registration order.
  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Zeroes every metric (definitions stay registered). Only safe when no
  /// other thread is writing concurrently — a test/CLI-epilogue operation.
  void reset();

 private:
  friend class Counter;
  friend class Gauge;
  friend class Histogram;

  struct Shard;
  struct Impl;
  Shard& local_shard();

  Impl* impl_;
  std::uint64_t instance_id_;
};

}  // namespace dsa::obs
