#include "obs/profiler.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <mutex>
#include <sstream>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/trace.hpp"

namespace dsa::obs {

namespace {
struct Accum {
  std::uint64_t count = 0;
  double total_ns = 0.0;
};
}  // namespace

// One thread's open-span path plus its aggregation map. The path/stack
// fields are owner-only; `totals` is guarded by `mutex` because report()
// reads it from another thread (the owner locks it once per completed span,
// and spans are coarse, so the lock never contends in steady state).
struct Profiler::ThreadState {
  std::mutex mutex;
  std::unordered_map<std::string, Accum> totals;

  std::string path;  // owner-only: "a/b/c" of currently open spans
};

struct Profiler::Impl {
  mutable std::mutex mutex;
  std::vector<std::unique_ptr<ThreadState>> states;
};

Profiler::Profiler() : impl_(new Impl) {}
Profiler::~Profiler() { delete impl_; }

Profiler& Profiler::global() {
  static Profiler instance;
  return instance;
}

Profiler::ThreadState& Profiler::local_state() {
  thread_local ThreadState* cached = nullptr;
  if (cached != nullptr) return *cached;
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->states.push_back(std::make_unique<ThreadState>());
  cached = impl_->states.back().get();
  return *cached;
}

PhaseReport Profiler::report() const {
  std::unordered_map<std::string, Accum> merged;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    for (const auto& state : impl_->states) {
      std::lock_guard<std::mutex> state_lock(state->mutex);
      for (const auto& [path, accum] : state->totals) {
        Accum& into = merged[path];
        into.count += accum.count;
        into.total_ns += accum.total_ns;
      }
    }
  }
  PhaseReport result;
  result.reserve(merged.size());
  for (auto& [path, accum] : merged) {
    result.push_back({path, accum.count, accum.total_ns / 1e6});
  }
  std::sort(result.begin(), result.end(),
            [](const PhaseStat& a, const PhaseStat& b) {
              return a.path < b.path;
            });
  return result;
}

std::string Profiler::report_text() const {
  const PhaseReport phases = report();
  std::size_t width = 5;
  for (const auto& phase : phases) width = std::max(width, phase.path.size());
  std::ostringstream out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-*s  %10s  %12s  %12s\n",
                static_cast<int>(width), "phase", "count", "total ms",
                "mean ms");
  out << line;
  for (const auto& phase : phases) {
    const double mean =
        phase.count ? phase.total_ms / static_cast<double>(phase.count) : 0.0;
    std::snprintf(line, sizeof(line), "%-*s  %10llu  %12.3f  %12.6f\n",
                  static_cast<int>(width), phase.path.c_str(),
                  static_cast<unsigned long long>(phase.count), phase.total_ms,
                  mean);
    out << line;
  }
  return out.str();
}

void Profiler::reset() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  for (const auto& state : impl_->states) {
    std::lock_guard<std::mutex> state_lock(state->mutex);
    state->totals.clear();
  }
}

ScopedPhase::ScopedPhase(std::string_view name) {
  if (!enabled()) return;
  Profiler::ThreadState& state = Profiler::global().local_state();
  state_ = &state;
  prev_len_ = state.path.size();
  if (!state.path.empty()) state.path += '/';
  state.path += name;
  start_ = std::chrono::steady_clock::now();
}

ScopedPhase::~ScopedPhase() {
  if (state_ == nullptr) return;
  const auto end = std::chrono::steady_clock::now();
  const double ns =
      std::chrono::duration<double, std::nano>(end - start_).count();
  {
    std::lock_guard<std::mutex> lock(state_->mutex);
    Accum& accum = state_->totals[state_->path];
    accum.count += 1;
    accum.total_ns += ns;
  }
  TraceSink& sink = TraceSink::global();
  if (sink.active()) sink.complete(state_->path, start_, end);
  state_->path.resize(prev_len_);
}

}  // namespace dsa::obs
