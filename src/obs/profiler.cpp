#include "obs/profiler.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <deque>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/trace.hpp"

namespace dsa::obs {

namespace {
struct Accum {
  std::uint64_t count = 0;
  double total_ns = 0.0;
};

// Interned phase names: stable const char* per distinct name, never freed,
// so a sampler thread can dereference a frame pointer it read from another
// thread's live stack at any time. Phase names are a small fixed set of
// mostly string literals; the thread-local cache makes the steady-state
// intern one hash lookup with no lock.
const char* intern_phase_name(std::string_view name) {
  static std::mutex mutex;
  static std::deque<std::string> storage;  // stable addresses
  static std::unordered_map<std::string_view, const char*> table;
  thread_local std::unordered_map<std::string, const char*> cache;

  if (const auto it = cache.find(std::string(name)); it != cache.end()) {
    return it->second;
  }
  const char* interned = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex);
    if (const auto it = table.find(name); it != table.end()) {
      interned = it->second;
    } else {
      storage.emplace_back(name);
      interned = storage.back().c_str();
      table.emplace(storage.back(), interned);
    }
  }
  cache.emplace(std::string(name), interned);
  return interned;
}
}  // namespace

// One thread's open-span path plus its aggregation map. The path/stack
// fields are owner-only; `totals` is guarded by `mutex` because report()
// reads it from another thread (the owner locks it once per completed span,
// and spans are coarse, so the lock never contends in steady state).
//
// live_frames/live_depth are the lock-free sampling view: the owner stores
// an interned frame then publishes the new depth with release order; a
// sampler acquires the depth and reads at most that many frames. The owner
// never blocks on a sampler.
struct Profiler::ThreadState {
  std::mutex mutex;
  std::unordered_map<std::string, Accum> totals;

  std::string path;  // owner-only: "a/b/c" of currently open spans

  std::atomic<std::uint32_t> live_depth{0};
  std::atomic<const char*> live_frames[Profiler::kMaxLiveDepth] = {};
};

struct Profiler::Impl {
  mutable std::mutex mutex;
  std::vector<std::unique_ptr<ThreadState>> states;
};

Profiler::Profiler() : impl_(new Impl) {}
Profiler::~Profiler() { delete impl_; }

Profiler& Profiler::global() {
  static Profiler instance;
  return instance;
}

Profiler::ThreadState& Profiler::local_state() {
  thread_local ThreadState* cached = nullptr;
  if (cached != nullptr) return *cached;
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->states.push_back(std::make_unique<ThreadState>());
  cached = impl_->states.back().get();
  return *cached;
}

std::vector<std::string> Profiler::sample_live_stacks() const {
  std::vector<std::string> stacks;
  std::lock_guard<std::mutex> lock(impl_->mutex);
  for (const auto& state : impl_->states) {
    const std::uint32_t depth = std::min<std::uint32_t>(
        state->live_depth.load(std::memory_order_acquire), kMaxLiveDepth);
    if (depth == 0) continue;
    std::string folded;
    for (std::uint32_t i = 0; i < depth; ++i) {
      const char* frame =
          state->live_frames[i].load(std::memory_order_relaxed);
      if (frame == nullptr) break;  // slot not yet published (racy enter)
      if (!folded.empty()) folded += ';';
      folded += frame;
    }
    if (!folded.empty()) stacks.push_back(std::move(folded));
  }
  return stacks;
}

PhaseReport Profiler::report() const {
  std::unordered_map<std::string, Accum> merged;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    for (const auto& state : impl_->states) {
      std::lock_guard<std::mutex> state_lock(state->mutex);
      for (const auto& [path, accum] : state->totals) {
        Accum& into = merged[path];
        into.count += accum.count;
        into.total_ns += accum.total_ns;
      }
    }
  }
  PhaseReport result;
  result.reserve(merged.size());
  for (auto& [path, accum] : merged) {
    result.push_back({path, accum.count, accum.total_ns / 1e6});
  }
  std::sort(result.begin(), result.end(),
            [](const PhaseStat& a, const PhaseStat& b) {
              return a.path < b.path;
            });
  return result;
}

std::string Profiler::report_text() const {
  const PhaseReport phases = report();
  std::size_t width = 5;
  for (const auto& phase : phases) width = std::max(width, phase.path.size());
  std::ostringstream out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-*s  %10s  %12s  %12s\n",
                static_cast<int>(width), "phase", "count", "total ms",
                "mean ms");
  out << line;
  for (const auto& phase : phases) {
    const double mean =
        phase.count ? phase.total_ms / static_cast<double>(phase.count) : 0.0;
    std::snprintf(line, sizeof(line), "%-*s  %10llu  %12.3f  %12.6f\n",
                  static_cast<int>(width), phase.path.c_str(),
                  static_cast<unsigned long long>(phase.count), phase.total_ms,
                  mean);
    out << line;
  }
  return out.str();
}

void Profiler::reset() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  for (const auto& state : impl_->states) {
    std::lock_guard<std::mutex> state_lock(state->mutex);
    state->totals.clear();
  }
}

ScopedPhase::ScopedPhase(std::string_view name) {
  if (!enabled()) return;
  Profiler::ThreadState& state = Profiler::global().local_state();
  state_ = &state;
  prev_len_ = state.path.size();
  if (!state.path.empty()) state.path += '/';
  state.path += name;
  // Publish the frame for wall-clock samplers: store the interned name,
  // then the grown depth with release order so an acquiring reader never
  // sees the depth before the frame.
  const std::uint32_t depth =
      state.live_depth.load(std::memory_order_relaxed);
  if (depth < Profiler::kMaxLiveDepth) {
    state.live_frames[depth].store(intern_phase_name(name),
                                   std::memory_order_relaxed);
  }
  state.live_depth.store(depth + 1, std::memory_order_release);
  start_ = std::chrono::steady_clock::now();
}

ScopedPhase::~ScopedPhase() {
  if (state_ == nullptr) return;
  const auto end = std::chrono::steady_clock::now();
  const double ns =
      std::chrono::duration<double, std::nano>(end - start_).count();
  {
    std::lock_guard<std::mutex> lock(state_->mutex);
    Accum& accum = state_->totals[state_->path];
    accum.count += 1;
    accum.total_ns += ns;
  }
  TraceSink& sink = TraceSink::global();
  if (sink.active()) sink.complete(state_->path, start_, end);
  state_->path.resize(prev_len_);
  state_->live_depth.store(
      state_->live_depth.load(std::memory_order_relaxed) - 1,
      std::memory_order_release);
}

}  // namespace dsa::obs
