// Master switch of the observability layer (src/obs): metrics registry,
// phase profiler, and trace sink all key off the one runtime flag here.
//
// Two layers of "off" keep the hot paths honest:
//
//  * Runtime: `enabled()` reads one relaxed atomic bool (default false).
//    Instrumented code checks it once per coarse unit of work (per
//    simulation run, per sweep task) and aggregates locally in between, so
//    a disabled binary pays a branch per run, not per round. Measured on
//    bench_sweep_throughput: < 2% (see EXPERIMENTS.md, "Observability
//    overhead").
//  * Compile time: building with -DDSA_TRACE=OFF defines
//    DSA_OBS_COMPILED_IN=0, which turns `enabled()` into `constexpr false`
//    and the DSA_OBS_PHASE macro into nothing — the instrumentation
//    branches fold away entirely. The obs classes themselves stay compiled
//    (they can still be driven directly, and the ABI does not fork), they
//    just never observe anything through the global switch.
//
// Determinism contract (enforced by ObsDeterminism tests): nothing in this
// layer touches RNG state or feeds back into simulation arithmetic. Sweep
// outputs are byte-identical with observability on, off, and at any thread
// count; only wall-clock readings differ between runs.
#pragma once

#include <atomic>

#ifndef DSA_OBS_COMPILED_IN
#define DSA_OBS_COMPILED_IN 1
#endif

namespace dsa::obs {

namespace detail {
inline std::atomic<bool> g_enabled{false};
}  // namespace detail

#if DSA_OBS_COMPILED_IN
/// True when instrumentation should record. One relaxed load; safe to call
/// from any thread at any time.
inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Flips the global switch. Typically done once at process start (CLI flag,
/// bench banner) before any worker threads observe anything.
inline void set_enabled(bool on) noexcept {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}
#else
constexpr bool enabled() noexcept { return false; }
inline void set_enabled(bool) noexcept {}
#endif

}  // namespace dsa::obs
