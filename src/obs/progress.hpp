// Live progress + ETA line for long sweeps.
//
//   obs::ProgressMeter meter("pra", total_protocols);
//   ...concurrent workers... meter.update(done_so_far);
//   meter.finish();
//
// update() is thread-safe, monotone (a stale lower `done` never moves the
// meter backwards), and rate-limited: it redraws a single `\r`-overwritten
// stderr line at most ~10×/s, showing items/s and the remaining-time
// estimate. Progress rendering is independent of the obs master switch —
// it reads only the wall clock and writes only stderr, so it cannot affect
// results. Construct with `enabled=false` for a fully silent meter.
#pragma once

#include <chrono>
#include <cstddef>
#include <mutex>
#include <string>

namespace dsa::obs {

class ProgressMeter {
 public:
  ProgressMeter(std::string label, std::size_t total, bool enabled = true);
  ~ProgressMeter();
  ProgressMeter(const ProgressMeter&) = delete;
  ProgressMeter& operator=(const ProgressMeter&) = delete;

  /// Reports that `done` items (of `total`) are complete.
  void update(std::size_t done);

  /// Draws the final line and a newline. Idempotent; also run by the
  /// destructor if update() ever drew anything.
  void finish();

 private:
  void draw(std::size_t done, bool final_line);

  std::string label_;
  std::size_t total_;
  bool enabled_;
  std::mutex mutex_;
  std::size_t best_done_ = 0;
  bool drew_ = false;
  bool finished_ = false;
  std::chrono::steady_clock::time_point start_;
  std::chrono::steady_clock::time_point last_draw_;
};

}  // namespace dsa::obs
