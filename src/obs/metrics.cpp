#include "obs/metrics.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <deque>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "obs/json_util.hpp"
#include "obs/sketch/sketch.hpp"
#include "util/csv.hpp"
#include "util/fs.hpp"

namespace dsa::obs {

namespace {
constexpr auto kRelaxed = std::memory_order_relaxed;
}  // namespace

// One thread's private slice of every sharded metric. Only the owning
// thread grows or writes a shard; snapshot() reads it under the registry
// mutex (growth also holds the mutex, so the deque structure is stable
// whenever another thread looks at it — the relaxed atomic cells are the
// only concurrently-touched state).
struct Registry::Shard {
  struct HistCells {
    HistCells(const std::vector<double>* bounds_ptr, std::size_t n_buckets)
        : bounds(bounds_ptr),
          buckets(std::make_unique<std::atomic<std::uint64_t>[]>(n_buckets)),
          n(n_buckets) {
      for (std::size_t i = 0; i < n; ++i) buckets[i].store(0, kRelaxed);
    }
    const std::vector<double>* bounds;  // stable: lives in Impl's deque
    std::unique_ptr<std::atomic<std::uint64_t>[]> buckets;  // bounds + 1
    std::size_t n;
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum_bits{0};  // bit_cast double accumulator
  };

  std::deque<std::atomic<std::uint64_t>> counters;
  std::deque<HistCells> histograms;
};

struct Registry::Impl {
  mutable std::mutex mutex;

  std::vector<std::string> counter_names;
  std::unordered_map<std::string, std::size_t> counter_ids;

  std::vector<std::string> gauge_names;
  std::unordered_map<std::string, std::size_t> gauge_ids;
  std::vector<double> gauge_values;  // cold path: guarded by mutex

  std::vector<std::string> hist_names;
  std::unordered_map<std::string, std::size_t> hist_ids;
  std::deque<std::vector<double>> hist_bounds;  // deque: stable addresses

  std::vector<std::unique_ptr<Shard>> shards;
};

namespace {
// Registry identity for the thread-local shard cache. Instance ids are
// never reused, so a cache entry for a destroyed registry can never alias a
// newly constructed one that happens to land at the same address.
std::atomic<std::uint64_t> g_next_instance_id{1};
}  // namespace

Registry::Registry()
    : impl_(new Impl), instance_id_(g_next_instance_id.fetch_add(1)) {}

Registry::~Registry() { delete impl_; }

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

Registry::Shard& Registry::local_shard() {
  thread_local std::vector<std::pair<std::uint64_t, Shard*>> cache;
  for (const auto& [id, shard] : cache) {
    if (id == instance_id_) return *shard;
  }
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->shards.push_back(std::make_unique<Shard>());
  Shard* shard = impl_->shards.back().get();
  cache.emplace_back(instance_id_, shard);
  return *shard;
}

Counter Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  auto [it, inserted] =
      impl_->counter_ids.try_emplace(std::string(name),
                                     impl_->counter_names.size());
  if (inserted) impl_->counter_names.emplace_back(name);
  return Counter(this, it->second);
}

Gauge Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  auto [it, inserted] = impl_->gauge_ids.try_emplace(std::string(name),
                                                     impl_->gauge_names.size());
  if (inserted) {
    impl_->gauge_names.emplace_back(name);
    impl_->gauge_values.push_back(0.0);
  }
  return Gauge(this, it->second);
}

Histogram Registry::histogram(std::string_view name,
                              std::vector<double> bounds) {
  if (bounds.empty()) {
    throw std::invalid_argument("obs::Registry: histogram '" +
                                std::string(name) + "' needs >= 1 bound");
  }
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    if (!(bounds[i - 1] < bounds[i])) {
      throw std::invalid_argument("obs::Registry: histogram '" +
                                  std::string(name) +
                                  "' bounds must be strictly ascending");
    }
  }
  std::lock_guard<std::mutex> lock(impl_->mutex);
  auto [it, inserted] =
      impl_->hist_ids.try_emplace(std::string(name), impl_->hist_names.size());
  if (inserted) {
    impl_->hist_names.emplace_back(name);
    impl_->hist_bounds.push_back(std::move(bounds));
  } else if (impl_->hist_bounds[it->second] != bounds) {
    throw std::invalid_argument("obs::Registry: histogram '" +
                                std::string(name) +
                                "' re-registered with different bounds");
  }
  return Histogram(this, it->second);
}

void Counter::add(std::uint64_t delta) const noexcept {
  if (registry_ == nullptr || delta == 0) return;
  Registry::Shard& shard = registry_->local_shard();
  if (id_ >= shard.counters.size()) {
    // First touch of this metric on this thread: grow under the registry
    // mutex so snapshot() never races the deque's structure.
    std::lock_guard<std::mutex> lock(registry_->impl_->mutex);
    while (shard.counters.size() <= id_) shard.counters.emplace_back(0);
  }
  shard.counters[id_].fetch_add(delta, kRelaxed);
}

void Gauge::set(double value) const noexcept {
  if (registry_ == nullptr) return;
  std::lock_guard<std::mutex> lock(registry_->impl_->mutex);
  registry_->impl_->gauge_values[id_] = value;
}

void Gauge::add(double delta) const noexcept {
  if (registry_ == nullptr) return;
  std::lock_guard<std::mutex> lock(registry_->impl_->mutex);
  registry_->impl_->gauge_values[id_] += delta;
}

void Histogram::observe(double value) const noexcept {
  if (registry_ == nullptr) return;
  Registry::Shard& shard = registry_->local_shard();
  if (id_ >= shard.histograms.size()) {
    std::lock_guard<std::mutex> lock(registry_->impl_->mutex);
    while (shard.histograms.size() <= id_) {
      const std::vector<double>& bounds =
          registry_->impl_->hist_bounds[shard.histograms.size()];
      shard.histograms.emplace_back(&bounds, bounds.size() + 1);
    }
  }
  Registry::Shard::HistCells& cells = shard.histograms[id_];
  const std::vector<double>& bounds = *cells.bounds;
  const std::size_t bucket = static_cast<std::size_t>(
      std::lower_bound(bounds.begin(), bounds.end(), value) - bounds.begin());
  cells.buckets[bucket].fetch_add(1, kRelaxed);
  cells.count.fetch_add(1, kRelaxed);
  // Doubles have no atomic fetch_add pre-C++20-on-all-targets; CAS the bits.
  std::uint64_t expected = cells.sum_bits.load(kRelaxed);
  while (!cells.sum_bits.compare_exchange_weak(
      expected, std::bit_cast<std::uint64_t>(
                    std::bit_cast<double>(expected) + value),
      kRelaxed, kRelaxed)) {
  }
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(impl_->mutex);

  snap.counters.resize(impl_->counter_names.size());
  for (std::size_t i = 0; i < impl_->counter_names.size(); ++i) {
    snap.counters[i].name = impl_->counter_names[i];
  }
  snap.gauges.resize(impl_->gauge_names.size());
  for (std::size_t i = 0; i < impl_->gauge_names.size(); ++i) {
    snap.gauges[i].name = impl_->gauge_names[i];
    snap.gauges[i].value = impl_->gauge_values[i];
  }
  snap.histograms.resize(impl_->hist_names.size());
  for (std::size_t i = 0; i < impl_->hist_names.size(); ++i) {
    auto& hist = snap.histograms[i];
    hist.name = impl_->hist_names[i];
    hist.bounds = impl_->hist_bounds[i];
    hist.buckets.assign(hist.bounds.size() + 1, 0);
  }

  for (const auto& shard : impl_->shards) {
    for (std::size_t i = 0; i < shard->counters.size(); ++i) {
      snap.counters[i].value += shard->counters[i].load(kRelaxed);
    }
    for (std::size_t i = 0; i < shard->histograms.size(); ++i) {
      const auto& cells = shard->histograms[i];
      auto& hist = snap.histograms[i];
      for (std::size_t b = 0; b < cells.n; ++b) {
        hist.buckets[b] += cells.buckets[b].load(kRelaxed);
      }
      hist.count += cells.count.load(kRelaxed);
      hist.sum += std::bit_cast<double>(cells.sum_bits.load(kRelaxed));
    }
  }
  return snap;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  for (auto& shard : impl_->shards) {
    for (auto& cell : shard->counters) cell.store(0, kRelaxed);
    for (auto& cells : shard->histograms) {
      for (std::size_t b = 0; b < cells.n; ++b) {
        cells.buckets[b].store(0, kRelaxed);
      }
      cells.count.store(0, kRelaxed);
      cells.sum_bits.store(0, kRelaxed);
    }
  }
  std::fill(impl_->gauge_values.begin(), impl_->gauge_values.end(), 0.0);
}

std::uint64_t MetricsSnapshot::counter_value(std::string_view name) const {
  for (const auto& c : counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

double MetricsSnapshot::gauge_value(std::string_view name) const {
  for (const auto& g : gauges) {
    if (g.name == name) return g.value;
  }
  return 0.0;
}

double MetricsSnapshot::HistogramValue::quantile(double q) const {
  if (count == 0 || bounds.empty()) return 0.0;
  // The cumulative walk is the shared sketch core (obs/sketch): the same
  // rank arithmetic backs SketchSnapshot::quantile, so histogram exports
  // and sketch timelines agree on what "p99" means.
  const BucketPosition pos = quantile_bucket(buckets, count, q);
  if (pos.index >= bounds.size()) return bounds.back();  // overflow bucket
  const double lo = pos.index == 0 ? 0.0 : bounds[pos.index - 1];
  return lo + (bounds[pos.index] - lo) * pos.fraction;
}

std::string MetricsSnapshot::to_jsonl() const {
  const std::vector<QuantileSpec> quantiles = export_quantiles();
  std::ostringstream out;
  for (const auto& c : counters) {
    out << "{\"type\":\"counter\",\"name\":\"" << json_escape(c.name)
        << "\",\"value\":" << c.value << "}\n";
  }
  for (const auto& g : gauges) {
    out << "{\"type\":\"gauge\",\"name\":\"" << json_escape(g.name)
        << "\",\"value\":" << util::format_number(g.value) << "}\n";
  }
  for (const auto& h : histograms) {
    out << "{\"type\":\"histogram\",\"name\":\"" << json_escape(h.name)
        << "\",\"bounds\":[";
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      if (i) out << ',';
      out << util::format_number(h.bounds[i]);
    }
    out << "],\"buckets\":[";
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (i) out << ',';
      out << h.buckets[i];
    }
    out << "],\"count\":" << h.count
        << ",\"sum\":" << util::format_number(h.sum);
    // Configurable quantile list (DSA_METRICS_QUANTILES); the default is
    // the historical p50/p90/p99 triple, so existing outputs are stable.
    for (const QuantileSpec& spec : quantiles) {
      out << ",\"" << json_escape(spec.label)
          << "\":" << util::format_number(h.quantile(spec.q));
    }
    out << "}\n";
  }
  return out.str();
}

void MetricsSnapshot::save_jsonl(const std::filesystem::path& path) const {
  util::atomic_write(path, to_jsonl());
}

}  // namespace dsa::obs
