// RAII scoped-timer phase profiler.
//
// `DSA_OBS_PHASE("sweep/quantify")` (or a ScopedPhase on the stack) times
// the enclosing scope. Nested phases build hierarchical paths — a
// "rank" phase inside a "run" phase aggregates under "run/rank" — and each
// thread accumulates {count, total wall time} per path locally, so the hot
// path costs two steady_clock reads plus one short lock of the thread's own
// aggregation map per span (spans are coarse: per run / per task, never per
// round). `Profiler::global().report()` merges every thread's totals.
//
// When a TraceSink capture is active, each completed span is also emitted
// as a Chrome trace-event slice, giving the same hierarchy on a timeline.
//
// Everything is inert while `obs::enabled()` is false: constructing a
// ScopedPhase is then a single predictable branch.
#pragma once

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#include "obs/obs.hpp"

namespace dsa::obs {

/// Aggregated wall time of one phase path across all threads.
struct PhaseStat {
  std::string path;  // "parent/child" span hierarchy
  std::uint64_t count = 0;
  double total_ms = 0.0;
};

using PhaseReport = std::vector<PhaseStat>;

class Profiler {
 public:
  /// Deepest phase nesting the live-stack view tracks. Deeper spans still
  /// time correctly; they just stop contributing frames to samples.
  static constexpr std::size_t kMaxLiveDepth = 32;

  static Profiler& global();

  /// Merged per-path totals across every thread, sorted by path.
  [[nodiscard]] PhaseReport report() const;

  /// Wall-clock sampling view: every thread's currently-open phase stack,
  /// folded as "outer;inner;leaf", threads with no open phase skipped.
  /// Reading never blocks phase enter/exit — each frame is one relaxed
  /// atomic load of an interned name pointer (valid for the process
  /// lifetime), the depth an acquire load. A stack caught mid-transition
  /// may be off by its leaf frame; that is ordinary sampling skew, never
  /// a torn pointer.
  [[nodiscard]] std::vector<std::string> sample_live_stacks() const;

  /// report() rendered as an aligned text table (for stderr epilogues).
  [[nodiscard]] std::string report_text() const;

  /// Drops all accumulated totals. Only call with no spans in flight.
  void reset();

 private:
  friend class ScopedPhase;
  struct ThreadState;
  Profiler();
  ~Profiler();
  ThreadState& local_state();

  struct Impl;
  Impl* impl_;
};

/// Times the enclosing scope under `name`, nested inside any phases already
/// open on this thread. No-op when observability is disabled.
class ScopedPhase {
 public:
  explicit ScopedPhase(std::string_view name);
  ~ScopedPhase();
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  Profiler::ThreadState* state_ = nullptr;  // null when inactive
  std::size_t prev_len_ = 0;
  std::chrono::steady_clock::time_point start_;
};

#define DSA_OBS_CONCAT_INNER(a, b) a##b
#define DSA_OBS_CONCAT(a, b) DSA_OBS_CONCAT_INNER(a, b)

#if DSA_OBS_COMPILED_IN
#define DSA_OBS_PHASE(name) \
  ::dsa::obs::ScopedPhase DSA_OBS_CONCAT(dsa_obs_phase_, __LINE__)(name)
#else
#define DSA_OBS_PHASE(name) ((void)0)
#endif

}  // namespace dsa::obs
