// Live telemetry: a background sampler that makes running experiments
// inspectable from the outside while they execute.
//
// Everything observability has produced so far (metrics JSONL, phase
// reports, the flight recorder) is post-hoc: the artifacts appear when the
// process exits. Long sweeps and swarm runs need the opposite — a cheap,
// continuously refreshed view another process can attach to. This module
// provides it with two artifacts per registered run:
//
//  * `<dir>/<name>.status.json` — a heartbeat, atomically rewritten every
//    sampling interval via util::atomic_write: pid, spec fingerprint,
//    phase, jobs done/total/failed, throughput, ETA, RSS/peak-RSS, pool
//    queue depth, per-shard progress, last error. `dsa_cli top` and
//    `dsa_cli status` poll this file; staleness (pid gone, or heartbeat
//    older than 3 intervals) is how a reader distinguishes a live run from
//    a stalled or SIGKILLed one.
//  * `<dir>/STATUS_<name>.timeseries.jsonl` — an append-only schema-v1
//    time-series: one JSON line per sample with metric-counter deltas,
//    gauges, and the top profiler phases. Resumed runs keep appending to
//    the same file, so the series spans crashes.
//
// Determinism contract (same as the rest of src/obs, enforced by the
// telemetry test suite): the sampler runs on its own thread, consumes no
// RNG, takes no locks on simulation hot paths (worker-side updates are
// relaxed atomics), and timestamps never enter any fingerprint — every
// result CSV/checkpoint is bitwise-identical with telemetry on or off, at
// any thread count, on any engine. Sampler I/O errors are swallowed: a
// full disk may lose telemetry, never the experiment.
//
// Enabled via DSA_STATUS=on (DSA_STATUS_INTERVAL_MS, DSA_STATUS_DIR tune
// it); parsing is strict like every other DSA_* knob. When telemetry is
// off, begin_run() returns an inert handle whose methods are single
// predictable branches.
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace dsa::util {
class ThreadPool;
}  // namespace dsa::util

namespace dsa::obs {

/// Telemetry configuration, normally read from the environment once at
/// process start (dsa_cli main, bench banners).
struct TelemetryOptions {
  bool enabled = false;
  std::uint32_t interval_ms = 1000;     // sampling period
  std::filesystem::path dir = "results";  // where status files land

  /// DSA_STATUS=off|on, DSA_STATUS_INTERVAL_MS (1..3600000),
  /// DSA_STATUS_DIR. Set-but-invalid values throw std::runtime_error
  /// naming the variable and value (env_enum/env_int machinery).
  static TelemetryOptions from_environment();
};

/// Progress state of one shard (checkpoint chunk, scenario job).
enum class ShardState : std::uint8_t {
  kTodo = 0,
  kRunning = 1,
  kDone = 2,
  kFailed = 3,
  kResumed = 4,  // completed by a previous process, skipped on resume
};

[[nodiscard]] const char* to_string(ShardState state) noexcept;

/// Identity of a run registered with the telemetry sampler.
struct RunInfo {
  std::string name;   // becomes the status-file stem; sanitized by caller
  std::string kind;   // "sweep", "scenario", "explore", "swarm", ...
  std::uint64_t spec_fingerprint = 0;  // options/spec fingerprint, 0 if n/a
  std::uint64_t jobs_total = 0;        // 0 = unknown
  std::string output;                  // primary artifact path, for display
};

/// Handle for one live run. Workers drive progress through it; every
/// method is safe from any thread and costs a relaxed atomic (or, for the
/// rare string setters, a short mutex never held by sim hot loops). All
/// methods no-op on a disabled (default-constructed) handle. Move-only;
/// destruction finishes the run if finish() was not called explicitly.
class TelemetryRun {
 public:
  TelemetryRun() = default;
  TelemetryRun(TelemetryRun&& other) noexcept;
  TelemetryRun& operator=(TelemetryRun&& other) noexcept;
  TelemetryRun(const TelemetryRun&) = delete;
  TelemetryRun& operator=(const TelemetryRun&) = delete;
  ~TelemetryRun();

  [[nodiscard]] bool active() const noexcept { return state_ != nullptr; }

  /// Names the current coarse phase ("quantify", "merge", ...).
  void set_phase(std::string_view phase);
  /// Monotone progress. add_done increments; update_done raises the done
  /// count to `done` if larger (CAS-max — safe with concurrent adders).
  void add_done(std::uint64_t n = 1);
  void update_done(std::uint64_t done);
  void add_failed(std::uint64_t n = 1);
  /// (Re)declares the total; 0 means unknown (no ETA).
  void set_total(std::uint64_t total);
  /// Records the most recent error message (shown in heartbeat + top).
  void set_last_error(std::string_view message);

  /// Points the sampler at a pool whose queue depth to report. The pool
  /// must outlive the watch: call watch_pool(nullptr) before the pool is
  /// destroyed (or finish the run first).
  void watch_pool(const util::ThreadPool* pool);

  /// Declares the run's shards (chunk/job labels, in stable order) and
  /// updates one shard's state. init_shards resets all states to kTodo.
  void init_shards(std::vector<std::string> labels);
  void set_shard_state(std::size_t index, ShardState state);

  /// Writes the final heartbeat (state "done"/"failed") and detaches from
  /// the sampler. Idempotent; also run by the destructor (ok=true).
  void finish(bool ok);

  struct State;  // opaque; public so the sampler internals can reach it

 private:
  friend class Telemetry;
  explicit TelemetryRun(std::shared_ptr<State> state)
      : state_(std::move(state)) {}
  std::shared_ptr<State> state_;
};

/// The sampler. Most code uses the process-wide global() instance,
/// configured once from the environment; tests construct their own.
class Telemetry {
 public:
  Telemetry();
  ~Telemetry();
  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  static Telemetry& global();

  /// Applies options: starts the sampler thread when enabled, stops it
  /// (joining) when disabled. Safe to call repeatedly and concurrently
  /// with begin_run/sample_now. Enabling also flips obs::set_enabled(true)
  /// so the metric feeds exist (when compiled in).
  void configure(const TelemetryOptions& options);

  [[nodiscard]] bool enabled() const noexcept;
  [[nodiscard]] TelemetryOptions options() const;

  /// Registers a run and writes its first heartbeat immediately. Returns
  /// an inert handle when telemetry is disabled.
  TelemetryRun begin_run(RunInfo info);

  /// Runs one sampling pass synchronously (tests, CLI epilogues). The
  /// background thread calls the same code on its interval.
  void sample_now();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Replaces every character outside [A-Za-z0-9._-] with '_', so any spec
/// name or output stem yields a safe status-file stem. Empty input maps to
/// "run".
[[nodiscard]] std::string sanitize_run_name(std::string_view name);

// ---------------------------------------------------------------------------
// Reader side: parsing heartbeats back (dsa_cli top / status, tests).

/// One parsed heartbeat file. Absent fields keep their zero/empty
/// defaults; unknown extra fields are ignored (schema may grow).
struct StatusFile {
  std::filesystem::path path;
  int schema = 0;
  std::string name;
  std::string kind;
  std::string state;  // "running" | "done" | "failed"
  std::string phase;
  std::string last_error;
  std::string output;
  std::string spec_fp;  // 16 hex digits (or empty)
  std::int64_t pid = 0;
  std::uint64_t seq = 0;
  std::int64_t started_unix_ms = 0;
  std::int64_t timestamp_unix_ms = 0;
  std::uint32_t interval_ms = 0;
  double uptime_sec = 0.0;
  std::uint64_t done = 0;
  std::uint64_t total = 0;
  std::uint64_t failed = 0;
  double rate_per_sec = 0.0;
  double eta_sec = -1.0;  // -1 = unknown
  std::uint64_t rss_kb = 0;
  std::uint64_t peak_rss_kb = 0;
  std::uint64_t queue_depth = 0;
  std::vector<std::pair<std::string, std::string>> shards;  // id -> state
  std::map<std::string, std::uint64_t> shard_counts;  // state -> count
  std::map<std::string, std::uint64_t> counters;      // cumulative values
  std::map<std::string, double> gauges;
  // Sketch summaries: name -> {"count","p50",...,"mean",...} field map.
  std::map<std::string, std::map<std::string, double>> sketches;
};

/// Health classification of a run as seen through its heartbeat.
enum class RunHealth : std::uint8_t {
  kRunning,
  kStalled,  // process alive but heartbeat older than 3 intervals
  kDead,     // heartbeat says running but the pid is gone
  kDone,
  kFailed,
};

[[nodiscard]] const char* to_string(RunHealth health) noexcept;

/// Parses a heartbeat file. Throws util::json::ParseError /
/// std::runtime_error on unreadable or malformed files; schema mismatches
/// (wrong "type") throw std::runtime_error naming the path.
[[nodiscard]] StatusFile load_status_file(const std::filesystem::path& path);

/// One parsed line of a STATUS_<name>.timeseries.jsonl file — the fields
/// the health-timeline report consumes. Absent fields keep their zero
/// defaults; unknown fields are ignored (schema may grow).
struct TimeseriesSample {
  std::uint64_t seq = 0;
  double uptime_sec = 0.0;
  std::uint64_t jobs_done = 0;
  std::map<std::string, std::uint64_t> counters_delta;
  std::map<std::string, double> gauges;
  // Sketch summaries at this sample: name -> {"count","p50",...} field map.
  std::map<std::string, std::map<std::string, double>> sketches;
};

/// Parses a telemetry time-series JSONL file in line order. Lines whose
/// "type" is not "telemetry" are skipped; malformed JSON throws
/// util::json::ParseError naming the offending line number via the path.
[[nodiscard]] std::vector<TimeseriesSample> load_timeseries(
    const std::filesystem::path& path);

/// True when `pid` names a live process (signal-0 probe; EPERM counts as
/// alive). Always false for pid <= 0.
[[nodiscard]] bool pid_alive(std::int64_t pid) noexcept;

/// Classifies a heartbeat given the reader's clock and a pid-liveness
/// answer (injectable for tests).
[[nodiscard]] RunHealth classify_status(const StatusFile& status,
                                        std::int64_t now_unix_ms,
                                        bool process_alive) noexcept;

/// Convenience: classify with the real clock and a real pid probe.
[[nodiscard]] RunHealth classify_status(const StatusFile& status);

/// Expands a target into heartbeat paths: a regular file is returned
/// as-is; a directory is scanned (non-recursively) for `*.status.json`,
/// sorted by filename. Anything else (or an empty scan) returns empty.
[[nodiscard]] std::vector<std::filesystem::path> find_status_files(
    const std::filesystem::path& target);

}  // namespace dsa::obs
