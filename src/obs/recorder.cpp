#include "obs/recorder.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <tuple>
#include <utility>

#include "obs/json_util.hpp"
#include "util/env.hpp"
#include "util/fingerprint.hpp"
#include "util/fs.hpp"

namespace dsa::obs {

const char* to_string(RecordLevel level) noexcept {
  switch (level) {
    case RecordLevel::kOff:
      return "off";
    case RecordLevel::kRounds:
      return "rounds";
    case RecordLevel::kFull:
      return "full";
  }
  return "off";
}

RecordLevel parse_record_level(const std::string& text) {
  if (text == "off") return RecordLevel::kOff;
  if (text == "rounds") return RecordLevel::kRounds;
  if (text == "full") return RecordLevel::kFull;
  throw std::invalid_argument("unknown record level '" + text +
                              "' (expected off|rounds|full)");
}

const char* to_string(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kRun:
      return "run";
    case EventKind::kRound:
      return "round";
    case EventKind::kSelect:
      return "select";
    case EventKind::kPartner:
      return "partner";
    case EventKind::kStranger:
      return "stranger";
    case EventKind::kPeer:
      return "peer";
    case EventKind::kPra:
      return "pra";
    case EventKind::kChoke:
      return "choke";
    case EventKind::kPiece:
      return "piece";
    case EventKind::kLeecher:
      return "leecher";
    case EventKind::kMixedSwarm:
      return "mixed_swarm";
    case EventKind::kFault:
      return "fault";
  }
  return "run";
}

EventKind parse_event_kind(const std::string& text) {
  for (int k = 0; k <= static_cast<int>(EventKind::kFault); ++k) {
    const auto kind = static_cast<EventKind>(k);
    if (text == to_string(kind)) return kind;
  }
  throw std::invalid_argument("unknown event kind '" + text + "'");
}

RecorderOptions RecorderOptions::from_environment() {
  RecorderOptions options;
  options.level = parse_record_level(
      util::env_enum("DSA_RECORD", "off", {"off", "rounds", "full"}));
  const auto stride = util::env_int("DSA_RECORD_STRIDE", 1);
  if (stride < 1) {
    throw std::runtime_error("DSA_RECORD_STRIDE must be >= 1, got " +
                             std::to_string(stride));
  }
  options.stride = static_cast<std::uint32_t>(stride);
  return options;
}

Recorder& Recorder::global() {
  static Recorder instance;
  return instance;
}

void Recorder::configure(const RecorderOptions& options) {
  level_.store(static_cast<int>(options.level), std::memory_order_relaxed);
  stride_.store(options.stride == 0 ? 1 : options.stride,
                std::memory_order_relaxed);
}

void Recorder::set_context(std::string context) {
  std::lock_guard lock(mutex_);
  context_ = std::move(context);
}

std::string Recorder::context() const {
  std::lock_guard lock(mutex_);
  return context_;
}

void Recorder::append(std::vector<Event>&& events) {
  std::lock_guard lock(mutex_);
  if (events_.empty()) {
    events_ = std::move(events);
    return;
  }
  events_.insert(events_.end(), std::make_move_iterator(events.begin()),
                 std::make_move_iterator(events.end()));
}

namespace {
thread_local bool g_suppressed = false;
}  // namespace

SuppressScope::SuppressScope() : previous_(g_suppressed) {
  g_suppressed = true;
}

SuppressScope::~SuppressScope() { g_suppressed = previous_; }

bool SuppressScope::active() noexcept { return g_suppressed; }

bool event_less(const Event& a, const Event& b) noexcept {
  return std::tie(a.run, a.kind, a.time, a.actor, a.peer, a.label, a.detail) <
         std::tie(b.run, b.kind, b.time, b.actor, b.peer, b.label, b.detail);
}

std::vector<Event> Recorder::snapshot() const {
  std::vector<Event> copy;
  {
    std::lock_guard lock(mutex_);
    copy = events_;
  }
  std::stable_sort(copy.begin(), copy.end(), event_less);
  return copy;
}

std::size_t Recorder::event_count() const {
  std::lock_guard lock(mutex_);
  return events_.size();
}

void Recorder::reset() {
  std::lock_guard lock(mutex_);
  events_.clear();
}

std::string to_recording_jsonl(const std::vector<Event>& events,
                               RecordLevel level, std::uint32_t stride) {
  std::ostringstream out;
  out << "{\"type\":\"recording\",\"schema\":1,\"level\":\""
      << to_string(level) << "\",\"stride\":" << stride
      << ",\"events\":" << events.size() << "}\n";
  for (const Event& event : events) {
    out << "{\"kind\":\"" << to_string(event.kind) << "\",\"run\":\""
        << event.run << "\",\"time\":" << event.time;
    if (event.actor != Event::kNoIndex) out << ",\"actor\":" << event.actor;
    if (event.peer != Event::kNoIndex) out << ",\"peer\":" << event.peer;
    out << ",\"value\":[" << util::exact_number(event.value[0]) << ','
        << util::exact_number(event.value[1]) << ','
        << util::exact_number(event.value[2]) << ','
        << util::exact_number(event.value[3]) << ']';
    if (!event.label.empty()) {
      out << ",\"label\":\"" << json_escape(event.label) << '"';
    }
    if (!event.detail.empty()) {
      out << ",\"detail\":\"" << json_escape(event.detail) << '"';
    }
    out << "}\n";
  }
  return std::move(out).str();
}

namespace {

// CSV cell quoting for the two free-text columns: labels are protocol
// descriptions and context tags, which may contain commas.
std::string csv_cell(const std::string& text) {
  if (text.find_first_of(",\"\n") == std::string::npos) return text;
  std::string quoted = "\"";
  for (char c : text) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

}  // namespace

std::string to_recording_csv(const std::vector<Event>& events) {
  std::ostringstream out;
  out << "kind,run,time,actor,peer,v0,v1,v2,v3,label,detail\n";
  for (const Event& event : events) {
    out << to_string(event.kind) << ',' << event.run << ',' << event.time
        << ',';
    if (event.actor != Event::kNoIndex) out << event.actor;
    out << ',';
    if (event.peer != Event::kNoIndex) out << event.peer;
    out << ',' << util::exact_number(event.value[0]) << ','
        << util::exact_number(event.value[1]) << ','
        << util::exact_number(event.value[2]) << ','
        << util::exact_number(event.value[3]) << ',' << csv_cell(event.label)
        << ',' << csv_cell(event.detail) << '\n';
  }
  return std::move(out).str();
}

void Recorder::save(const std::filesystem::path& path) const {
  const std::vector<Event> events = snapshot();
  if (path.extension() == ".csv") {
    util::atomic_write(path, to_recording_csv(events));
  } else {
    util::atomic_write(
        path, to_recording_jsonl(events, level(),
                                 stride_.load(std::memory_order_relaxed)));
  }
}

}  // namespace dsa::obs
