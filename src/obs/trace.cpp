#include "obs/trace.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json_util.hpp"
#include "obs/obs.hpp"
#include "util/fs.hpp"

namespace dsa::obs {

namespace {

struct Event {
  std::string name;
  double ts_us = 0.0;
  double dur_us = 0.0;
  bool is_instant = false;
  std::uint32_t tid = 0;
};

double micros_between(std::chrono::steady_clock::time_point from,
                      std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

std::string format_micros(double us) {
  // Three decimals (nanosecond resolution) without scientific notation —
  // Chrome's JSON loader accepts fractional microsecond timestamps.
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", us);
  return buf;
}

}  // namespace

struct TraceSink::ThreadBuffer {
  std::mutex mutex;
  std::vector<Event> events;
  std::uint32_t tid = 0;
};

struct TraceSink::Impl {
  std::mutex mutex;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
  std::uint32_t next_tid = 1;
  std::filesystem::path out_path;
  std::chrono::steady_clock::time_point t0;
};

TraceSink::TraceSink() : impl_(new Impl) {}
TraceSink::~TraceSink() { delete impl_; }

TraceSink& TraceSink::global() {
  static TraceSink instance;
  return instance;
}

TraceSink::ThreadBuffer& TraceSink::local_buffer() {
  thread_local ThreadBuffer* cached = nullptr;
  if (cached != nullptr) return *cached;
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->buffers.push_back(std::make_unique<ThreadBuffer>());
  ThreadBuffer* buffer = impl_->buffers.back().get();
  buffer->tid = impl_->next_tid++;
  cached = buffer;
  return *buffer;
}

void TraceSink::start(std::filesystem::path out_path) {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->out_path = std::move(out_path);
    impl_->t0 = std::chrono::steady_clock::now();
    for (auto& buffer : impl_->buffers) {
      std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
      buffer->events.clear();
    }
  }
  active_.store(true, std::memory_order_release);
  set_enabled(true);
}

void TraceSink::complete(std::string_view name,
                         std::chrono::steady_clock::time_point begin,
                         std::chrono::steady_clock::time_point end) {
  if (!active()) return;
  ThreadBuffer& buffer = local_buffer();
  Event event;
  event.name = std::string(name);
  event.ts_us = micros_between(impl_->t0, begin);
  event.dur_us = micros_between(begin, end);
  event.tid = buffer.tid;
  std::lock_guard<std::mutex> lock(buffer.mutex);
  buffer.events.push_back(std::move(event));
}

void TraceSink::instant(std::string_view name) {
  if (!active()) return;
  ThreadBuffer& buffer = local_buffer();
  Event event;
  event.name = std::string(name);
  event.ts_us = micros_between(impl_->t0, std::chrono::steady_clock::now());
  event.is_instant = true;
  event.tid = buffer.tid;
  std::lock_guard<std::mutex> lock(buffer.mutex);
  buffer.events.push_back(std::move(event));
}

std::size_t TraceSink::stop_and_write() {
  if (!active()) return 0;
  active_.store(false, std::memory_order_relaxed);

  std::vector<Event> merged;
  std::filesystem::path out_path;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    out_path = impl_->out_path;
    for (auto& buffer : impl_->buffers) {
      std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
      merged.insert(merged.end(),
                    std::make_move_iterator(buffer->events.begin()),
                    std::make_move_iterator(buffer->events.end()));
      buffer->events.clear();
    }
  }
  std::sort(merged.begin(), merged.end(),
            [](const Event& a, const Event& b) { return a.ts_us < b.ts_us; });

  std::ostringstream json;
  json << "{\"traceEvents\":[";
  json << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
          "\"args\":{\"name\":\"dsa\"}}";
  for (const Event& event : merged) {
    json << ",\n{\"name\":\"" << json_escape(event.name)
         << "\",\"cat\":\"dsa\",\"ph\":\"" << (event.is_instant ? 'i' : 'X')
         << "\",\"ts\":" << format_micros(event.ts_us);
    if (event.is_instant) {
      json << ",\"s\":\"g\"";
    } else {
      json << ",\"dur\":" << format_micros(event.dur_us);
    }
    json << ",\"pid\":1,\"tid\":" << event.tid << "}";
  }
  json << "],\"displayTimeUnit\":\"ms\"}\n";

  util::atomic_write(out_path, json.str());
  return merged.size();
}

}  // namespace dsa::obs
