// Structured trace sink: Chrome trace-event JSON, loadable in Perfetto
// (https://ui.perfetto.dev) or chrome://tracing.
//
// Usage: `TraceSink::global().start(path)` begins a capture; completed
// ScopedPhase spans (and explicit complete()/instant() calls) are buffered
// per thread; `stop_and_write()` merges the buffers and atomically writes
//
//   {"traceEvents":[
//     {"name":"sweep/quantify","cat":"dsa","ph":"X","ts":12.5,"dur":834.0,
//      "pid":1,"tid":2},
//     {"name":"checkpoint-save","cat":"dsa","ph":"i","ts":900.1,"s":"g",
//      "pid":1,"tid":1},
//     ...],"displayTimeUnit":"ms"}
//
// Timestamps are microseconds since start() on the steady clock — the sink
// never reads RNG state or feeds anything back into simulation code, so
// capturing a trace cannot perturb results (see obs.hpp's determinism
// contract).
#pragma once

#include <atomic>
#include <chrono>
#include <filesystem>
#include <string_view>

namespace dsa::obs {

class TraceSink {
 public:
  static TraceSink& global();

  /// Begins buffering events, timestamped relative to now. Also flips
  /// `obs::set_enabled(true)` so phases start recording.
  void start(std::filesystem::path out_path);

  /// True between start() and stop_and_write(). Acquire load: seeing true
  /// also publishes the capture's t0 and output path set by start().
  [[nodiscard]] bool active() const noexcept {
    return active_.load(std::memory_order_acquire);
  }

  /// A duration slice ("ph":"X") on the calling thread's track.
  void complete(std::string_view name,
                std::chrono::steady_clock::time_point begin,
                std::chrono::steady_clock::time_point end);

  /// A global instant marker ("ph":"i","s":"g") — checkpoint saves,
  /// resume events, fault activations.
  void instant(std::string_view name);

  /// Stops capture, merges every thread's buffer, and atomically writes the
  /// JSON to the path given to start(). Returns the number of events
  /// written. No-op (returns 0) if no capture is active.
  std::size_t stop_and_write();

 private:
  TraceSink();
  ~TraceSink();
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  struct ThreadBuffer;
  struct Impl;
  ThreadBuffer& local_buffer();

  std::atomic<bool> active_{false};
  Impl* impl_;
};

}  // namespace dsa::obs
