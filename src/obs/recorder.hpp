// Simulation flight recorder: structured per-round events captured inside
// the simulators and flushed once per run, so any workload (bench, CLI,
// scenario job) can be replayed into paper-figure tables after the fact.
//
// Design rules, inherited from the obs layer (obs.hpp):
//
//  * The recorder never touches RNG state and never feeds back into
//    simulation arithmetic — sim outputs are bitwise-identical with
//    recording off, on, and at any thread count (RecorderDeterminism
//    tests).
//  * Hot loops never touch a lock or an atomic: each engine run owns a
//    plain RunCapture buffer (level and stride latched once at run start)
//    and appends events locally; the buffer is flushed into the global
//    Recorder under its mutex exactly once, when the run finishes.
//  * Building with -DDSA_TRACE=OFF (DSA_OBS_COMPILED_IN=0) pins the level
//    to kOff at compile time: every `if (capture.rounds())` /
//    `if (capture.full())` guard folds away and the instrumentation
//    compiles to no-ops.
//  * Files are written through util::atomic_write (never torn), as JSONL
//    (one typed object per line, parseable by util::json and `dsa_cli
//    report`) or CSV (one row per event, for spreadsheet work).
//
// Sampling: DSA_RECORD=off|rounds|full picks the level; DSA_RECORD_STRIDE=k
// records every k-th round (or tick) for the per-round event kinds.
// "rounds" captures run headers and end-of-run summaries plus per-round
// aggregates; "full" adds per-decision detail (partner selections, stranger
// gifts, choke decisions, piece completions).
//
// Determinism of the recording itself: snapshot() returns events in a
// canonical sort order (run key first), so as long as run keys are unique —
// which per-item seed derivation guarantees for every sweep — the saved
// bytes are independent of thread scheduling.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <mutex>
#include <string>
#include <vector>

#include "obs/obs.hpp"

namespace dsa::obs {

/// How much the recorder captures. Order matters: each level is a superset
/// of the previous one.
enum class RecordLevel : int { kOff = 0, kRounds = 1, kFull = 2 };

[[nodiscard]] const char* to_string(RecordLevel level) noexcept;

/// Parses "off" | "rounds" | "full"; throws std::invalid_argument otherwise.
[[nodiscard]] RecordLevel parse_record_level(const std::string& text);

/// Event vocabulary. The `value` slots are kind-specific; the meanings here
/// are the schema contract between the engines and obs/report.
enum class EventKind : std::uint8_t {
  /// One per engine run. label = "round"|"swarm", detail = context tag,
  /// value = {peers, rounds (or max_ticks), churn_rate (or piece_count),
  /// engine (0 dense, 1 sparse; unused for swarm)}.
  kRun = 0,
  /// Round-model per-round aggregate (rounds level, strided). time = round,
  /// value = {mean round throughput, peers replaced so far}.
  kRound,
  /// Round-model selection outcome (full, strided). actor = acting peer,
  /// value = {candidates, partners kept, strangers contacted, lanes}.
  kSelect,
  /// One selected partner (full, strided). actor -> peer,
  /// value = {amount granted (pre intake cap), window bandwidth received
  /// from the partner — the reciprocation signal}.
  kPartner,
  /// One stranger contact (full, strided). actor -> peer,
  /// value = {gift amount; 0.0 is a visible defection}.
  kStranger,
  /// Round-model end-of-run peer summary (rounds level). actor = peer,
  /// label = protocol description, value = {capacity (final), mean
  /// per-round throughput — exactly SimulationOutcome::peer_throughput}.
  kPeer,
  /// One PRA quantification outcome (any level). actor = design-space
  /// protocol id, label = protocol description, value = {performance
  /// (normalized), robustness, aggressiveness, raw performance}.
  kPra,
  /// Swarm choke decision (full, strided): one per unchoked peer per choke
  /// round. actor = chooser, peer = unchoked peer, value = {1 regular slot,
  /// 2 optimistic slot}.
  kChoke,
  /// Swarm piece completion (full, strided by tick). actor = receiver,
  /// peer = sender, value = {piece index, pieces held after}.
  kPiece,
  /// Swarm end-of-run leecher summary (rounds level). actor = leecher index
  /// (0-based, seeder excluded), label = client variant,
  /// value = {capacity KBps, completion time s (< 0 = unfinished),
  /// uploaded KB, downloaded KB}.
  kLeecher,
  /// One run_mixed_swarm experiment (rounds level). label = "A|B" variant
  /// names, detail = context tag, value = {count_a, total leechers,
  /// max_ticks}.
  kMixedSwarm,
  /// A fault-plan event striking the swarm (rounds level). time = tick,
  /// actor = engine peer index (0 = seeder, leecher l at l + 1),
  /// label = "crash" | "outage_begin" | "outage_end".
  /// crash: value = {downtime ticks, pieces wiped}. outage_begin:
  /// value = {window end tick}. outage_end: value = {ticks the seeder was
  /// dark}.
  kFault,
};

[[nodiscard]] const char* to_string(EventKind kind) noexcept;

/// Inverse of to_string(EventKind); throws std::invalid_argument on an
/// unknown name.
[[nodiscard]] EventKind parse_event_kind(const std::string& text);

/// One recorded event. `run` is the run key (the simulation seed), which
/// per-item seed derivation keeps unique per run within a sweep.
struct Event {
  EventKind kind = EventKind::kRun;
  std::uint64_t run = 0;
  std::uint32_t time = 0;
  std::uint32_t actor = kNoIndex;
  std::uint32_t peer = kNoIndex;
  std::array<double, 4> value{{0.0, 0.0, 0.0, 0.0}};
  std::string label;
  std::string detail;

  static constexpr std::uint32_t kNoIndex = 0xffffffffu;
};

/// Level + stride, typically parsed from DSA_RECORD / DSA_RECORD_STRIDE.
struct RecorderOptions {
  RecordLevel level = RecordLevel::kOff;
  std::uint32_t stride = 1;

  /// DSA_RECORD (off) and DSA_RECORD_STRIDE (1). Set-but-invalid values
  /// throw, matching the strict util::env contract.
  static RecorderOptions from_environment();
};

/// The process-wide event store. Engines never touch it directly in hot
/// loops — they go through RunCapture below.
class Recorder {
 public:
  Recorder() = default;
  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  static Recorder& global();

  /// Sets level/stride. Like obs::set_enabled, flip this once before the
  /// runs you want captured. With DSA_OBS_COMPILED_IN=0 the stored level is
  /// ignored (level() stays kOff) but the call is still safe.
  void configure(const RecorderOptions& options);

#if DSA_OBS_COMPILED_IN
  [[nodiscard]] RecordLevel level() const noexcept {
    return static_cast<RecordLevel>(level_.load(std::memory_order_relaxed));
  }
#else
  [[nodiscard]] constexpr RecordLevel level() const noexcept {
    return RecordLevel::kOff;
  }
#endif
  [[nodiscard]] std::uint32_t stride() const noexcept {
    return stride_.load(std::memory_order_relaxed);
  }

  /// Free-form provenance tag stamped into kRun / kMixedSwarm events
  /// (e.g. "fig9a"). Reports group series by it.
  void set_context(std::string context);
  [[nodiscard]] std::string context() const;

  /// Takes one run's buffered events (called by RunCapture::flush).
  void append(std::vector<Event>&& events);

  /// Canonically sorted copy of everything recorded so far.
  [[nodiscard]] std::vector<Event> snapshot() const;
  [[nodiscard]] std::size_t event_count() const;

  /// Drops all events (level/stride/context stay).
  void reset();

  /// Writes the snapshot via util::atomic_write. ".csv" selects CSV, any
  /// other extension JSONL. Throws std::runtime_error on I/O failure.
  void save(const std::filesystem::path& path) const;

 private:
  mutable std::mutex mutex_;
  std::atomic<int> level_{0};
  std::atomic<std::uint32_t> stride_{1};
  std::string context_;
  std::vector<Event> events_;
};

/// Thread-local recording suppression for bulk inner simulations: a PRA
/// tournament runs ~1e5 sims per sweep, and recording each one at rounds
/// level would buffer millions of events nobody reports on — the sweep's
/// figure-relevant output is the per-protocol kPra events emitted after
/// quantification. The swarming model wraps its tournament sims in this
/// scope; RunCapture then latches kOff for those runs. Purely an obs-side
/// filter: sim outputs are unaffected.
class SuppressScope {
 public:
  SuppressScope();
  ~SuppressScope();
  SuppressScope(const SuppressScope&) = delete;
  SuppressScope& operator=(const SuppressScope&) = delete;

  /// True while any SuppressScope is alive on this thread.
  static bool active() noexcept;

 private:
  bool previous_;
};

/// Per-run capture buffer: latches level/stride/context once at run start,
/// then appends to a plain vector. Flushes to the Recorder exactly once —
/// explicitly via flush() or on destruction.
class RunCapture {
 public:
  explicit RunCapture(Recorder& recorder)
      : recorder_(&recorder),
        level_(SuppressScope::active() ? RecordLevel::kOff : recorder.level()),
        stride_(recorder.stride() == 0 ? 1 : recorder.stride()) {
    if (level_ != RecordLevel::kOff) context_ = recorder.context();
  }
  ~RunCapture() { flush(); }
  RunCapture(const RunCapture&) = delete;
  RunCapture& operator=(const RunCapture&) = delete;

  /// Level guards for instrumentation sites. With DSA_OBS_COMPILED_IN=0
  /// these are constexpr false and the sites fold away.
#if DSA_OBS_COMPILED_IN
  [[nodiscard]] bool rounds() const noexcept {
    return level_ >= RecordLevel::kRounds;
  }
  [[nodiscard]] bool full() const noexcept {
    return level_ == RecordLevel::kFull;
  }
#else
  [[nodiscard]] constexpr bool rounds() const noexcept { return false; }
  [[nodiscard]] constexpr bool full() const noexcept { return false; }
#endif

  /// True when round/tick `t` falls on the sampling stride.
  [[nodiscard]] bool sampled(std::size_t t) const noexcept {
    return t % stride_ == 0;
  }

  [[nodiscard]] const std::string& context() const noexcept {
    return context_;
  }

  void emit(Event event) { events_.push_back(std::move(event)); }

  void flush() {
    if (!events_.empty()) recorder_->append(std::move(events_));
    events_.clear();
  }

 private:
  Recorder* recorder_;
  RecordLevel level_;
  std::uint32_t stride_;
  std::string context_;
  std::vector<Event> events_;
};

/// Canonical event ordering: (run, kind, time, actor, peer, label, detail).
/// snapshot()/save() apply it so recordings are independent of thread
/// scheduling whenever run keys are unique.
[[nodiscard]] bool event_less(const Event& a, const Event& b) noexcept;

/// Serializes the (already sorted) events as the recording JSONL: a header
/// line {"type":"recording","schema":1,...} followed by one event per line.
/// Doubles use util::exact_number and the 64-bit run key is a decimal
/// string (JSON numbers only carry 53 bits), so a parse -> serialize round
/// trip is byte-identical.
[[nodiscard]] std::string to_recording_jsonl(const std::vector<Event>& events,
                                             RecordLevel level,
                                             std::uint32_t stride);

/// Serializes the events as CSV (header row + one row per event).
[[nodiscard]] std::string to_recording_csv(const std::vector<Event>& events);

}  // namespace dsa::obs
