#include "obs/flame/flame.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/obs.hpp"
#include "obs/profiler.hpp"
#include "util/env.hpp"
#include "util/fs.hpp"

namespace dsa::obs {

// ---------------------------------------------------------------------------
// Options.

FlameOptions FlameOptions::from_environment() {
  FlameOptions options;
  options.enabled = util::env_enum("DSA_PROF", "off", {"off", "on"}) == "on";
  const std::int64_t hz = util::env_int("DSA_PROF_HZ", options.hz);
  if (hz < 1 || hz > 1000) {
    throw std::runtime_error("DSA_PROF_HZ=" + std::to_string(hz) +
                             ": must be in [1, 1000]");
  }
  options.hz = static_cast<std::uint32_t>(hz);
  options.out = util::env_string("DSA_PROF_OUT", options.out.string());
  return options;
}

// ---------------------------------------------------------------------------
// Sampler.

struct FlameSampler::Impl {
  mutable std::mutex mutex;
  std::condition_variable wake;
  FlameOptions options;
  FoldedStacks stacks;
  std::uint64_t written = 0;  // samples flushed by stop_and_write
  bool running = false;       // sampler thread live
  bool stop = false;
  std::thread thread;

  void take_sample_locked() {
    std::vector<std::string> live = Profiler::global().sample_live_stacks();
    if (live.empty()) {
      ++stacks[kIdleStack];
      return;
    }
    for (std::string& folded : live) ++stacks[std::move(folded)];
  }

  void stop_thread(std::unique_lock<std::mutex>& lock) {
    if (!running) return;
    stop = true;
    wake.notify_all();
    std::thread joining = std::move(thread);
    lock.unlock();
    joining.join();
    lock.lock();
    running = false;
    stop = false;
  }

  void start_thread() {
    running = true;
    thread = std::thread([this] {
      const auto period =
          std::chrono::nanoseconds(1'000'000'000u / options.hz);
      std::unique_lock<std::mutex> lock(mutex);
      while (!stop) {
        // Sample first, then sleep: a short-lived process still gets at
        // least one tick.
        take_sample_locked();
        wake.wait_for(lock, period, [this] { return stop; });
      }
    });
  }
};

FlameSampler::FlameSampler() : impl_(new Impl) {}

FlameSampler::~FlameSampler() {
  std::unique_lock<std::mutex> lock(impl_->mutex);
  impl_->stop_thread(lock);
}

FlameSampler& FlameSampler::global() {
  static FlameSampler instance;
  return instance;
}

void FlameSampler::configure(const FlameOptions& options) {
  std::unique_lock<std::mutex> lock(impl_->mutex);
  impl_->stop_thread(lock);
  impl_->options = options;
  if (options.enabled) {
    // Phases must record for samples to see frames (mirrors telemetry).
    set_enabled(true);
    impl_->start_thread();
  }
}

bool FlameSampler::enabled() const noexcept {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->options.enabled && impl_->running;
}

FlameOptions FlameSampler::options() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->options;
}

void FlameSampler::sample_now() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->take_sample_locked();
}

FoldedStacks FlameSampler::stacks() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->stacks;
}

std::uint64_t FlameSampler::stop_and_write() {
  std::unique_lock<std::mutex> lock(impl_->mutex);
  impl_->stop_thread(lock);
  std::uint64_t total = 0;
  for (const auto& [path, count] : impl_->stacks) total += count;
  if (total == 0) return 0;
  const std::string text = to_folded_text(impl_->stacks);
  const std::filesystem::path out = impl_->options.out;
  lock.unlock();
  try {
    util::atomic_write(out, text);
  } catch (const std::exception& error) {
    // A full disk may lose the profile, never the experiment.
    std::fprintf(stderr, "[prof] write failed: %s\n", error.what());
    return 0;
  }
  lock.lock();
  impl_->written = total;
  return total;
}

void FlameSampler::reset() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->stacks.clear();
  impl_->written = 0;
}

// ---------------------------------------------------------------------------
// Folded text.

std::string to_folded_text(const FoldedStacks& stacks) {
  std::ostringstream out;
  for (const auto& [path, count] : stacks) {
    if (count == 0) continue;
    out << path << ' ' << count << '\n';
  }
  return std::move(out).str();
}

FoldedStacks parse_folded(std::string_view text) {
  FoldedStacks stacks;
  std::size_t line_number = 0;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = text.substr(start, end - start);
    start = end + 1;
    ++line_number;
    if (line.empty()) continue;
    const std::size_t space = line.rfind(' ');
    const auto fail = [&](const char* reason) {
      throw std::runtime_error("folded line " + std::to_string(line_number) +
                               ": " + reason);
    };
    if (space == std::string_view::npos || space == 0) {
      fail("expected '<stack> <count>'");
    }
    const std::string_view count_text = line.substr(space + 1);
    if (count_text.empty() ||
        count_text.find_first_not_of("0123456789") != std::string_view::npos) {
      fail("malformed sample count");
    }
    std::uint64_t count = 0;
    for (char c : count_text) count = count * 10 + static_cast<std::uint64_t>(c - '0');
    stacks[std::string(line.substr(0, space))] += count;
  }
  return stacks;
}

FoldedStacks load_folded(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    throw std::runtime_error("cannot open folded file: " + path.string());
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_folded(buffer.str());
}

double FlameSummary::attribution() const noexcept {
  const std::uint64_t busy = total - idle;
  if (busy == 0) return 1.0;
  return static_cast<double>(attributed) / static_cast<double>(busy);
}

FlameSummary summarize_folded(const FoldedStacks& stacks) {
  FlameSummary summary;
  for (const auto& [path, count] : stacks) {
    summary.total += count;
    if (path == kIdleStack) {
      summary.idle += count;
      continue;
    }
    if (path.find(';') != std::string::npos) summary.attributed += count;
  }
  return summary;
}

// ---------------------------------------------------------------------------
// Terminal renderer.

namespace {
struct FlameNode {
  std::uint64_t count = 0;  // samples in this subtree
  std::map<std::string, FlameNode> children;
};

void insert_path(FlameNode& root, std::string_view path,
                 std::uint64_t count) {
  FlameNode* node = &root;
  std::size_t start = 0;
  while (start <= path.size()) {
    std::size_t end = path.find(';', start);
    if (end == std::string_view::npos) end = path.size();
    node = &node->children[std::string(path.substr(start, end - start))];
    node->count += count;
    if (end == path.size()) break;
    start = end + 1;
  }
}

void render_node(std::ostringstream& out, const std::string& name,
                 const FlameNode& node, std::uint64_t busy_total, int depth) {
  const double share =
      busy_total == 0
          ? 0.0
          : static_cast<double>(node.count) / static_cast<double>(busy_total);
  constexpr int kBarWidth = 24;
  const int filled = static_cast<int>(share * kBarWidth + 0.5);
  std::string bar;
  for (int i = 0; i < kBarWidth; ++i) bar += i < filled ? "#" : ".";
  char line[512];
  std::snprintf(line, sizeof(line), "  %*s%-*s %8llu  %5.1f%%  [%s]\n",
                depth * 2, "",
                std::max(1, 36 - depth * 2), name.c_str(),
                static_cast<unsigned long long>(node.count), share * 100.0,
                bar.c_str());
  out << line;
  // Children hottest-first; ties broken by name for deterministic output.
  std::vector<std::pair<std::string, const FlameNode*>> ordered;
  ordered.reserve(node.children.size());
  for (const auto& [child_name, child] : node.children) {
    ordered.emplace_back(child_name, &child);
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& a, const auto& b) {
              if (a.second->count != b.second->count) {
                return a.second->count > b.second->count;
              }
              return a.first < b.first;
            });
  for (const auto& [child_name, child] : ordered) {
    render_node(out, child_name, *child, busy_total, depth + 1);
  }
}
}  // namespace

std::string render_flame(const FoldedStacks& stacks) {
  const FlameSummary summary = summarize_folded(stacks);
  std::ostringstream out;
  char header[256];
  std::snprintf(header, sizeof(header),
                "flame: %llu samples (%llu idle), attribution %.1f%% below "
                "root\n\n",
                static_cast<unsigned long long>(summary.total),
                static_cast<unsigned long long>(summary.idle),
                summary.attribution() * 100.0);
  out << header;
  if (summary.total == summary.idle) {
    out << "  (no non-idle samples)\n";
    return std::move(out).str();
  }

  FlameNode root;
  for (const auto& [path, count] : stacks) {
    if (path == kIdleStack) continue;
    insert_path(root, path, count);
  }
  const std::uint64_t busy = summary.total - summary.idle;
  std::vector<std::pair<std::string, const FlameNode*>> ordered;
  for (const auto& [name, node] : root.children) {
    ordered.emplace_back(name, &node);
  }
  std::sort(ordered.begin(), ordered.end(), [](const auto& a, const auto& b) {
    if (a.second->count != b.second->count) {
      return a.second->count > b.second->count;
    }
    return a.first < b.first;
  });
  for (const auto& [name, node] : ordered) {
    render_node(out, name, *node, busy, 0);
  }

  // Hottest whole stacks (leaf paths), the "where is the time" shortlist.
  std::vector<std::pair<std::string, std::uint64_t>> hottest;
  for (const auto& [path, count] : stacks) {
    if (path != kIdleStack) hottest.emplace_back(path, count);
  }
  std::sort(hottest.begin(), hottest.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  out << "\nhottest stacks:\n";
  const std::size_t top = std::min<std::size_t>(hottest.size(), 5);
  for (std::size_t i = 0; i < top; ++i) {
    char line[512];
    std::snprintf(line, sizeof(line), "  %5.1f%%  %s\n",
                  100.0 * static_cast<double>(hottest[i].second) /
                      static_cast<double>(busy),
                  hottest[i].first.c_str());
    out << line;
  }
  return std::move(out).str();
}

}  // namespace dsa::obs
