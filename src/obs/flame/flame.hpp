// Wall-clock sampling profiler with flamegraph output.
//
// The phase profiler (obs/profiler) answers "how much total time per
// path"; it cannot say where wall time goes *right now* or how time nests
// while a phase is open. This module adds the classic sampling view: a
// background thread wakes `DSA_PROF_HZ` times a second, snapshots every
// registered thread's live phase stack (Profiler::sample_live_stacks — a
// few relaxed atomic loads per thread, never a lock shared with sim hot
// paths), and accumulates folded stacks. On stop the counts are written as
// collapsed-stack text — `outer;inner;leaf <samples>` lines, the format
// flamegraph.pl and speedscope ingest directly — plus a self-contained
// terminal renderer behind `dsa_cli flame <folded>`.
//
// Ticks where no thread has an open phase are recorded under "(idle)"
// (process alive, instrumentation dark — startup, I/O, pool teardown).
// Attribution = samples whose stack is at least two frames deep, over all
// non-idle samples: the fraction of observed wall time the phase wiring
// can place *below* a root. CI's flame-smoke job holds a PRA sweep to
// >= 90%.
//
// Determinism contract: the sampler only reads; it consumes no RNG and
// touches no sim state, so every result artifact is bitwise-identical with
// DSA_PROF on or off. The folded output itself is wall-clock data and is
// never fingerprinted.
//
// Enabled via DSA_PROF=on (DSA_PROF_HZ, DSA_PROF_OUT tune it); parsing is
// strict like every other DSA_* knob.
#pragma once

#include <cstdint>
#include <filesystem>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <string_view>

namespace dsa::obs {

/// Folded stack name used for ticks with no open phase anywhere.
inline constexpr const char* kIdleStack = "(idle)";

/// Sampler configuration, normally read from the environment once at
/// process start (dsa_cli main, bench MetricsScope).
struct FlameOptions {
  bool enabled = false;
  std::uint32_t hz = 97;  // sampling rate; a prime, so periodic phase
                          // boundaries don't alias the sample clock
  std::filesystem::path out = "results/PROF.folded";

  /// DSA_PROF=off|on, DSA_PROF_HZ (1..1000), DSA_PROF_OUT. Set-but-invalid
  /// values throw std::runtime_error naming the variable and value.
  static FlameOptions from_environment();
};

/// Accumulated samples: folded stack ("a;b;c" or "(idle)") -> count.
using FoldedStacks = std::map<std::string, std::uint64_t>;

/// The sampler. Most code drives the process-wide global() instance;
/// tests construct their own.
class FlameSampler {
 public:
  FlameSampler();
  ~FlameSampler();
  FlameSampler(const FlameSampler&) = delete;
  FlameSampler& operator=(const FlameSampler&) = delete;

  static FlameSampler& global();

  /// Applies options: starts the sampling thread when enabled, stops it
  /// (joining, keeping accumulated samples) when disabled. Enabling also
  /// flips obs::set_enabled(true) so phases exist to sample (when
  /// compiled in).
  void configure(const FlameOptions& options);

  [[nodiscard]] bool enabled() const noexcept;
  [[nodiscard]] FlameOptions options() const;

  /// Takes one sample synchronously (tests, deterministic drivers).
  void sample_now();

  /// Copy of the accumulated folded stacks.
  [[nodiscard]] FoldedStacks stacks() const;

  /// Stops the sampling thread and writes the collapsed-stack file
  /// (util::atomic_write; I/O errors are swallowed — profiling must never
  /// fail the experiment). Returns the total sample count written, 0 when
  /// nothing was ever sampled (no file is written then). Idempotent.
  std::uint64_t stop_and_write();

  /// Drops accumulated samples (registrations/config stay).
  void reset();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// ---------------------------------------------------------------------------
// Folded-stack text: writer, parser, summary, terminal renderer.

/// Collapsed-stack text: one "path count" line per entry, paths sorted
/// bytewise (deterministic given the same counts).
[[nodiscard]] std::string to_folded_text(const FoldedStacks& stacks);

/// Parses collapsed-stack text. Throws std::runtime_error naming the line
/// on malformed input (missing count, junk after count, empty path).
[[nodiscard]] FoldedStacks parse_folded(std::string_view text);
[[nodiscard]] FoldedStacks load_folded(const std::filesystem::path& path);

/// Sample accounting over a folded set.
struct FlameSummary {
  std::uint64_t total = 0;       // all samples including idle
  std::uint64_t idle = 0;        // "(idle)" samples
  std::uint64_t attributed = 0;  // stacks with >= 2 frames
  /// attributed / (total - idle); 1.0 when there are no non-idle samples
  /// (nothing observed means nothing unattributed).
  [[nodiscard]] double attribution() const noexcept;
};
[[nodiscard]] FlameSummary summarize_folded(const FoldedStacks& stacks);

/// Renders the folded set as an indented tree with per-node sample
/// percentages and bars, plus the hottest leaf stacks — the `dsa_cli
/// flame` view. Pure function of the counts.
[[nodiscard]] std::string render_flame(const FoldedStacks& stacks);

}  // namespace dsa::obs
