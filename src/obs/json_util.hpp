// JSON string escaping for the obs writers (metrics JSONL, Chrome trace
// events). The implementation lives in util::json so the scenario layer's
// manifest writer shares the exact same escaping; this header keeps the
// historical dsa::obs::json_escape name alive for the obs sources.
#pragma once

#include <string>
#include <string_view>

#include "util/json.hpp"

namespace dsa::obs {

inline std::string json_escape(std::string_view text) {
  return util::json::escape(text);
}

}  // namespace dsa::obs
