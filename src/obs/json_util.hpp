// Minimal JSON string escaping shared by the obs writers (metrics JSONL,
// Chrome trace events). Handles the characters that must be escaped per RFC
// 8259; everything else passes through verbatim (metric and span names are
// ASCII by convention).
#pragma once

#include <cstdio>
#include <string>
#include <string_view>

namespace dsa::obs {

inline std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace dsa::obs
