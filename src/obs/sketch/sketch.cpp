#include "obs/sketch/sketch.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <deque>
#include <limits>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "obs/json_util.hpp"
#include "util/env.hpp"
#include "util/fingerprint.hpp"
#include "util/json.hpp"

namespace dsa::obs {

namespace {

constexpr auto kRelaxed = std::memory_order_relaxed;

double gamma_of(const SketchOptions& options) {
  return (1.0 + options.relative_error) / (1.0 - options.relative_error);
}

/// Number of log-spaced magnitude buckets covering [min_value, max_value].
std::size_t bucket_count(const SketchOptions& options) {
  const double span =
      std::log(options.max_value / options.min_value) /
      std::log(gamma_of(options));
  return static_cast<std::size_t>(std::ceil(span)) + 1;
}

/// Magnitude bucket index for |v| in [min_value, inf): bucket i covers
/// (min·gamma^(i-1), min·gamma^i], clamped into the top bucket above
/// max_value.
std::size_t magnitude_bucket(double magnitude, const SketchOptions& options,
                             std::size_t n_buckets) {
  const double ratio =
      std::log(magnitude / options.min_value) / std::log(gamma_of(options));
  const double index = std::ceil(ratio);
  if (index <= 0.0) return 0;
  if (index >= static_cast<double>(n_buckets - 1)) return n_buckets - 1;
  return static_cast<std::size_t>(index);
}

/// Midpoint representative of magnitude bucket i: within relative_error of
/// every value the bucket covers.
double bucket_representative(std::size_t index, const SketchOptions& options) {
  const double gamma = gamma_of(options);
  return options.min_value * 2.0 *
         std::pow(gamma, static_cast<double>(index)) / (gamma + 1.0);
}

void validate(const SketchOptions& options, std::string_view name) {
  if (!(options.relative_error > 0.0) || !(options.relative_error < 1.0) ||
      !(options.min_value > 0.0) ||
      !(options.min_value < options.max_value)) {
    throw std::invalid_argument(
        "obs::SketchRegistry: sketch '" + std::string(name) +
        "' needs 0 < relative_error < 1 and 0 < min_value < max_value");
  }
}

std::vector<QuantileSpec> default_quantiles() {
  return {{"p50", 0.5}, {"p90", 0.9}, {"p99", 0.99}};
}

std::mutex g_export_mutex;
std::vector<QuantileSpec>& export_list() {
  static std::vector<QuantileSpec> list = default_quantiles();
  return list;
}

}  // namespace

// ---------------------------------------------------------------------------
// Quantile-export configuration.

std::vector<QuantileSpec> parse_quantile_list(std::string_view text) {
  std::vector<QuantileSpec> specs;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find(',', start);
    if (end == std::string_view::npos) end = text.size();
    std::string token(text.substr(start, end - start));
    start = end + 1;
    // Trim surrounding spaces; empty tokens (",," or a trailing comma) are
    // malformed rather than skipped — a typo must not silently drop a
    // quantile.
    const std::size_t first = token.find_first_not_of(" \t");
    const std::size_t last = token.find_last_not_of(" \t");
    if (first == std::string::npos) {
      throw std::invalid_argument("empty quantile token");
    }
    token = token.substr(first, last - first + 1);

    double q = 0.0;
    std::string label;
    if (token.front() == 'p' || token.front() == 'P') {
      const std::string digits = token.substr(1);
      if (digits.empty() ||
          digits.find_first_not_of("0123456789") != std::string::npos) {
        throw std::invalid_argument("bad quantile token '" + token +
                                    "' (expected pNN or a fraction)");
      }
      // Digits after 'p' read as a decimal fraction: p5 = p50 = 0.5,
      // p999 = 0.999.
      double scale = 1.0;
      for (char c : digits) {
        scale /= 10.0;
        q += static_cast<double>(c - '0') * scale;
      }
      label = "p" + digits;
    } else {
      char* parse_end = nullptr;
      q = std::strtod(token.c_str(), &parse_end);
      if (parse_end == token.c_str() || *parse_end != '\0') {
        throw std::invalid_argument("bad quantile token '" + token +
                                    "' (expected pNN or a fraction)");
      }
      // Label from the fraction digits: 0.25 -> p25, 0.999 -> p999.
      char digits[16];
      std::snprintf(digits, sizeof(digits), "%.6f", q);
      std::string body(digits + 2);  // strip "0."
      while (body.size() > 1 && body.back() == '0') body.pop_back();
      label = "p" + body;
    }
    if (!(q > 0.0) || !(q < 1.0)) {
      throw std::invalid_argument("quantile '" + token +
                                  "' outside (0, 1)");
    }
    specs.push_back({std::move(label), q});
  }
  if (specs.empty()) throw std::invalid_argument("empty quantile list");
  return specs;
}

std::vector<QuantileSpec> quantiles_from_environment() {
  const std::string text = util::env_string("DSA_METRICS_QUANTILES", "");
  if (text.empty()) return default_quantiles();
  try {
    return parse_quantile_list(text);
  } catch (const std::invalid_argument& error) {
    throw std::runtime_error("DSA_METRICS_QUANTILES='" + text +
                             "': " + error.what());
  }
}

std::vector<QuantileSpec> export_quantiles() {
  std::lock_guard<std::mutex> lock(g_export_mutex);
  return export_list();
}

void set_export_quantiles(std::vector<QuantileSpec> specs) {
  std::lock_guard<std::mutex> lock(g_export_mutex);
  export_list() = specs.empty() ? default_quantiles() : std::move(specs);
}

// ---------------------------------------------------------------------------
// Shared quantile core.

BucketPosition quantile_bucket(std::span<const std::uint64_t> buckets,
                               std::uint64_t total, double q) {
  if (total == 0) return {buckets.size(), 0.0};
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    const auto in_bucket = static_cast<double>(buckets[i]);
    if (cumulative + in_bucket >= target) {
      return {i, std::clamp((target - cumulative) / in_bucket, 0.0, 1.0)};
    }
    cumulative += in_bucket;
  }
  return {buckets.size(), 0.0};
}

// ---------------------------------------------------------------------------
// Registry internals.

// One thread's private slice of every registered summary. Only the owning
// thread writes; snapshot() reads the relaxed atomic cells under the
// registry mutex (growth also holds the mutex, so the deque structure is
// stable whenever another thread looks).
struct SketchRegistry::Shard {
  struct SketchCells {
    // Layout: [0] zero bucket, [1 .. n] positive, [n+1 .. 2n] negative.
    explicit SketchCells(std::size_t n_buckets)
        : cells(std::make_unique<std::atomic<std::uint64_t>[]>(
              1 + 2 * n_buckets)),
          n(n_buckets) {
      for (std::size_t i = 0; i < 1 + 2 * n; ++i) cells[i].store(0, kRelaxed);
    }
    std::unique_ptr<std::atomic<std::uint64_t>[]> cells;
    std::size_t n;
  };

  struct MomentCells {
    MomentCells() {
      min_bits.store(
          std::bit_cast<std::uint64_t>(std::numeric_limits<double>::infinity()),
          kRelaxed);
      max_bits.store(std::bit_cast<std::uint64_t>(
                         -std::numeric_limits<double>::infinity()),
                     kRelaxed);
    }
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum_bits{0};
    std::atomic<std::uint64_t> sum_squares_bits{0};
    std::atomic<std::uint64_t> min_bits;
    std::atomic<std::uint64_t> max_bits;
  };

  std::deque<SketchCells> sketches;
  std::deque<MomentCells> moments;
};

struct SketchRegistry::Impl {
  mutable std::mutex mutex;

  std::vector<std::string> sketch_names;
  std::unordered_map<std::string, std::size_t> sketch_ids;
  std::vector<SketchOptions> sketch_options;
  std::vector<std::size_t> sketch_buckets;  // bucket_count per sketch

  std::vector<std::string> moment_names;
  std::unordered_map<std::string, std::size_t> moment_ids;

  std::vector<std::unique_ptr<Shard>> shards;
};

namespace {
// Registry identity for the thread-local shard cache (same discipline as
// obs::Registry: instance ids never reused, so a destroyed registry can
// never alias a new one at the same address).
std::atomic<std::uint64_t> g_next_sketch_instance_id{1};

// Lock-free double accumulate / min / max on bit-cast atomic cells.
void atomic_add_double(std::atomic<std::uint64_t>& bits, double delta) {
  std::uint64_t expected = bits.load(kRelaxed);
  while (!bits.compare_exchange_weak(
      expected,
      std::bit_cast<std::uint64_t>(std::bit_cast<double>(expected) + delta),
      kRelaxed, kRelaxed)) {
  }
}
void atomic_min_double(std::atomic<std::uint64_t>& bits, double value) {
  std::uint64_t expected = bits.load(kRelaxed);
  while (value < std::bit_cast<double>(expected) &&
         !bits.compare_exchange_weak(expected,
                                     std::bit_cast<std::uint64_t>(value),
                                     kRelaxed, kRelaxed)) {
  }
}
void atomic_max_double(std::atomic<std::uint64_t>& bits, double value) {
  std::uint64_t expected = bits.load(kRelaxed);
  while (value > std::bit_cast<double>(expected) &&
         !bits.compare_exchange_weak(expected,
                                     std::bit_cast<std::uint64_t>(value),
                                     kRelaxed, kRelaxed)) {
  }
}
}  // namespace

SketchRegistry::SketchRegistry()
    : impl_(new Impl),
      instance_id_(g_next_sketch_instance_id.fetch_add(1)) {}

SketchRegistry::~SketchRegistry() { delete impl_; }

SketchRegistry& SketchRegistry::global() {
  static SketchRegistry instance;
  return instance;
}

SketchRegistry::Shard& SketchRegistry::local_shard() {
  thread_local std::vector<std::pair<std::uint64_t, Shard*>> cache;
  for (const auto& [id, shard] : cache) {
    if (id == instance_id_) return *shard;
  }
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->shards.push_back(std::make_unique<Shard>());
  Shard* shard = impl_->shards.back().get();
  cache.emplace_back(instance_id_, shard);
  return *shard;
}

QuantileSketch SketchRegistry::sketch(std::string_view name,
                                      SketchOptions options) {
  validate(options, name);
  std::lock_guard<std::mutex> lock(impl_->mutex);
  auto [it, inserted] = impl_->sketch_ids.try_emplace(
      std::string(name), impl_->sketch_names.size());
  if (inserted) {
    impl_->sketch_names.emplace_back(name);
    impl_->sketch_options.push_back(options);
    impl_->sketch_buckets.push_back(bucket_count(options));
  } else if (!(impl_->sketch_options[it->second] == options)) {
    throw std::invalid_argument("obs::SketchRegistry: sketch '" +
                                std::string(name) +
                                "' re-registered with different options");
  }
  return QuantileSketch(this, it->second);
}

MomentsAccumulator SketchRegistry::moments(std::string_view name) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  auto [it, inserted] = impl_->moment_ids.try_emplace(
      std::string(name), impl_->moment_names.size());
  if (inserted) impl_->moment_names.emplace_back(name);
  return MomentsAccumulator(this, it->second);
}

void QuantileSketch::insert(double value) const noexcept {
  if (registry_ == nullptr || !enabled()) return;
  SketchRegistry::Shard& shard = registry_->local_shard();
  if (id_ >= shard.sketches.size()) {
    // First touch on this thread: grow under the registry mutex so
    // snapshot() never races the deque's structure.
    std::lock_guard<std::mutex> lock(registry_->impl_->mutex);
    while (shard.sketches.size() <= id_) {
      shard.sketches.emplace_back(
          registry_->impl_->sketch_buckets[shard.sketches.size()]);
    }
  }
  SketchRegistry::Shard::SketchCells& cells = shard.sketches[id_];
  const SketchOptions& options = registry_->impl_->sketch_options[id_];
  const double magnitude = std::abs(value);
  std::size_t slot = 0;
  if (std::isnan(value)) return;  // a NaN observation carries no rank
  if (magnitude >= options.min_value) {
    const std::size_t bucket = magnitude_bucket(magnitude, options, cells.n);
    slot = value > 0.0 ? 1 + bucket : 1 + cells.n + bucket;
  }
  cells.cells[slot].fetch_add(1, kRelaxed);
}

void MomentsAccumulator::insert(double value) const noexcept {
  if (registry_ == nullptr || !enabled()) return;
  if (std::isnan(value)) return;
  SketchRegistry::Shard& shard = registry_->local_shard();
  if (id_ >= shard.moments.size()) {
    std::lock_guard<std::mutex> lock(registry_->impl_->mutex);
    while (shard.moments.size() <= id_) shard.moments.emplace_back();
  }
  SketchRegistry::Shard::MomentCells& cells = shard.moments[id_];
  cells.count.fetch_add(1, kRelaxed);
  atomic_add_double(cells.sum_bits, value);
  atomic_add_double(cells.sum_squares_bits, value * value);
  atomic_min_double(cells.min_bits, value);
  atomic_max_double(cells.max_bits, value);
}

SketchRegistrySnapshot SketchRegistry::snapshot() const {
  SketchRegistrySnapshot snap;
  std::lock_guard<std::mutex> lock(impl_->mutex);

  snap.sketches.resize(impl_->sketch_names.size());
  for (std::size_t i = 0; i < impl_->sketch_names.size(); ++i) {
    auto& sketch = snap.sketches[i];
    sketch.name = impl_->sketch_names[i];
    sketch.options = impl_->sketch_options[i];
    sketch.negative.assign(impl_->sketch_buckets[i], 0);
    sketch.positive.assign(impl_->sketch_buckets[i], 0);
  }
  snap.moments.resize(impl_->moment_names.size());
  for (std::size_t i = 0; i < impl_->moment_names.size(); ++i) {
    snap.moments[i].name = impl_->moment_names[i];
    snap.moments[i].min = std::numeric_limits<double>::infinity();
    snap.moments[i].max = -std::numeric_limits<double>::infinity();
  }

  for (const auto& shard : impl_->shards) {
    for (std::size_t i = 0; i < shard->sketches.size(); ++i) {
      const auto& cells = shard->sketches[i];
      auto& sketch = snap.sketches[i];
      sketch.zero_count += cells.cells[0].load(kRelaxed);
      for (std::size_t b = 0; b < cells.n; ++b) {
        sketch.positive[b] += cells.cells[1 + b].load(kRelaxed);
        sketch.negative[b] += cells.cells[1 + cells.n + b].load(kRelaxed);
      }
    }
    for (std::size_t i = 0; i < shard->moments.size(); ++i) {
      const auto& cells = shard->moments[i];
      auto& moments = snap.moments[i];
      moments.count += cells.count.load(kRelaxed);
      moments.sum += std::bit_cast<double>(cells.sum_bits.load(kRelaxed));
      moments.sum_squares +=
          std::bit_cast<double>(cells.sum_squares_bits.load(kRelaxed));
      moments.min = std::min(
          moments.min, std::bit_cast<double>(cells.min_bits.load(kRelaxed)));
      moments.max = std::max(
          moments.max, std::bit_cast<double>(cells.max_bits.load(kRelaxed)));
    }
  }
  for (auto& moments : snap.moments) {
    if (moments.count == 0) {
      moments.min = 0.0;
      moments.max = 0.0;
    }
  }
  return snap;
}

void SketchRegistry::reset() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  for (auto& shard : impl_->shards) {
    for (auto& cells : shard->sketches) {
      for (std::size_t i = 0; i < 1 + 2 * cells.n; ++i) {
        cells.cells[i].store(0, kRelaxed);
      }
    }
    for (auto& cells : shard->moments) {
      cells.count.store(0, kRelaxed);
      cells.sum_bits.store(0, kRelaxed);
      cells.sum_squares_bits.store(0, kRelaxed);
      cells.min_bits.store(
          std::bit_cast<std::uint64_t>(std::numeric_limits<double>::infinity()),
          kRelaxed);
      cells.max_bits.store(std::bit_cast<std::uint64_t>(
                               -std::numeric_limits<double>::infinity()),
                           kRelaxed);
    }
  }
}

// ---------------------------------------------------------------------------
// Snapshot queries, merge, serialization.

std::uint64_t SketchSnapshot::count() const noexcept {
  std::uint64_t total = zero_count;
  for (std::uint64_t c : negative) total += c;
  for (std::uint64_t c : positive) total += c;
  return total;
}

double SketchSnapshot::quantile(double q) const {
  const std::uint64_t total = count();
  if (total == 0) return 0.0;
  // Conceptual signed ordering: negative magnitudes (largest first), the
  // zero bucket, then positive magnitudes ascending.
  const std::size_t n = positive.size();
  std::vector<std::uint64_t> ordered;
  ordered.reserve(2 * n + 1);
  for (std::size_t i = n; i-- > 0;) ordered.push_back(negative[i]);
  ordered.push_back(zero_count);
  for (std::size_t i = 0; i < n; ++i) ordered.push_back(positive[i]);

  const BucketPosition pos = quantile_bucket(ordered, total, q);
  if (pos.index >= ordered.size()) return 0.0;
  if (pos.index < n) {
    return -bucket_representative(n - 1 - pos.index, options);
  }
  if (pos.index == n) return 0.0;
  return bucket_representative(pos.index - n - 1, options);
}

void SketchSnapshot::merge(const SketchSnapshot& other) {
  if (!(options == other.options) ||
      positive.size() != other.positive.size()) {
    throw std::invalid_argument(
        "obs::SketchSnapshot: merging sketches with different mappings");
  }
  zero_count += other.zero_count;
  for (std::size_t i = 0; i < positive.size(); ++i) {
    positive[i] += other.positive[i];
    negative[i] += other.negative[i];
  }
}

namespace {
void append_sparse(std::ostringstream& out,
                   const std::vector<std::uint64_t>& buckets) {
  bool first = true;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    if (!first) out << ',';
    first = false;
    out << '"' << i << "\":" << buckets[i];
  }
}

void read_sparse(const util::json::Value& object,
                 std::vector<std::uint64_t>& buckets,
                 std::string_view what) {
  for (const auto& [key, value] : object.members) {
    char* end = nullptr;
    const unsigned long long index = std::strtoull(key.c_str(), &end, 10);
    if (end == key.c_str() || *end != '\0' || index >= buckets.size() ||
        value.type != util::json::Value::Type::kNumber) {
      throw std::runtime_error("obs::SketchSnapshot: bad " +
                               std::string(what) + " bucket '" + key + "'");
    }
    buckets[index] = static_cast<std::uint64_t>(value.number);
  }
}
}  // namespace

std::string SketchSnapshot::to_json() const {
  std::ostringstream out;
  out << "{\"type\":\"sketch\",\"name\":\"" << json_escape(name)
      << "\",\"alpha\":" << util::exact_number(options.relative_error)
      << ",\"min_value\":" << util::exact_number(options.min_value)
      << ",\"max_value\":" << util::exact_number(options.max_value)
      << ",\"zero\":" << zero_count << ",\"neg\":{";
  append_sparse(out, negative);
  out << "},\"pos\":{";
  append_sparse(out, positive);
  out << "}}";
  return std::move(out).str();
}

SketchSnapshot SketchSnapshot::from_json(std::string_view text) {
  const util::json::Value root = util::json::parse(text, "<sketch>");
  const auto* type = root.find("type");
  if (type == nullptr || type->text != "sketch") {
    throw std::runtime_error("obs::SketchSnapshot: not a sketch object");
  }
  SketchSnapshot snap;
  const auto number = [&root](const char* key) {
    const auto* value = root.find(key);
    if (value == nullptr || value->type != util::json::Value::Type::kNumber) {
      throw std::runtime_error(
          std::string("obs::SketchSnapshot: missing number '") + key + "'");
    }
    return value->number;
  };
  if (const auto* name_value = root.find("name")) snap.name = name_value->text;
  snap.options.relative_error = number("alpha");
  snap.options.min_value = number("min_value");
  snap.options.max_value = number("max_value");
  validate(snap.options, snap.name);
  snap.zero_count = static_cast<std::uint64_t>(number("zero"));
  const std::size_t n = bucket_count(snap.options);
  snap.negative.assign(n, 0);
  snap.positive.assign(n, 0);
  const auto* neg = root.find("neg");
  const auto* pos = root.find("pos");
  if (neg == nullptr || pos == nullptr) {
    throw std::runtime_error("obs::SketchSnapshot: missing neg/pos buckets");
  }
  read_sparse(*neg, snap.negative, "neg");
  read_sparse(*pos, snap.positive, "pos");
  return snap;
}

double MomentsSnapshot::mean() const noexcept {
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

double MomentsSnapshot::variance() const noexcept {
  if (count == 0) return 0.0;
  const double m = mean();
  return std::max(0.0, sum_squares / static_cast<double>(count) - m * m);
}

double MomentsSnapshot::stddev() const noexcept {
  return std::sqrt(variance());
}

void MomentsSnapshot::merge(const MomentsSnapshot& other) {
  if (other.count == 0) return;
  if (count == 0) {
    min = other.min;
    max = other.max;
  } else {
    min = std::min(min, other.min);
    max = std::max(max, other.max);
  }
  count += other.count;
  sum += other.sum;
  sum_squares += other.sum_squares;
}

}  // namespace dsa::obs
