// Streaming sketches: constant-memory, mergeable summaries of value
// distributions, built for the million-peer roadmap where per-peer event
// logs are the wrong shape.
//
// Two summary kinds:
//
//  * QuantileSketch — a log-spaced fixed-bucket sketch (DDSketch-flavored
//    mapping). A value's bucket index is floor-of-log with base
//    gamma = (1 + alpha) / (1 - alpha), so every quantile reported for a
//    value inside [min_value, max_value] is within relative error `alpha`
//    of an exact-rank answer (proven by the accuracy suite against sorted
//    streams). The issue suggests KLL/P²-style sketches; we deliberately
//    use deterministic integer log-buckets instead: bucket counts are plain
//    uint64 adds, so merges are *exactly* associative and commutative and a
//    snapshot is bitwise-identical however the stream was sharded across
//    threads — randomized compactors (KLL) or marker interpolation (P²)
//    cannot give the repo's bitwise-determinism contract.
//  * MomentsAccumulator — count / min / max / sum / sum-of-squares.
//    count, min, and max are exactly merge-order-independent; mean and
//    variance are derived from floating sums and may differ in the last
//    ulp across shard merge orders (documented, tested with tolerances).
//
// Write path mirrors obs::Registry: each thread gets a private shard, an
// insert is a handful of relaxed atomic RMWs on that shard, and snapshot()
// merges shards under the registry mutex. Handles no-op when
// default-constructed, and insert() additionally checks obs::enabled() so
// instrumented hot loops pay one predictable branch when observability is
// off.
//
// This header also owns the process-wide quantile-export configuration
// (DSA_METRICS_QUANTILES): the label/fraction list that
// MetricsSnapshot::to_jsonl, the telemetry sketch section, and `dsa_cli
// top` all render. HistogramValue::quantile and SketchSnapshot::quantile
// share the one cumulative bucket-walk implemented here.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "obs/obs.hpp"

namespace dsa::obs {

class SketchRegistry;

// ---------------------------------------------------------------------------
// Quantile-export configuration (DSA_METRICS_QUANTILES).

/// One exported quantile: display label ("p999") and fraction (0.999).
struct QuantileSpec {
  std::string label;
  double q = 0.0;
  bool operator==(const QuantileSpec&) const = default;
};

/// Parses a comma-separated quantile list: "p50,p90,p999" (digits after
/// 'p' read as a decimal fraction, so p5 = p50 = 0.5, p999 = 0.999) or
/// plain fractions like "0.25" (labeled from their digits). Throws
/// std::invalid_argument on empty lists, malformed tokens, or fractions
/// outside (0, 1).
[[nodiscard]] std::vector<QuantileSpec> parse_quantile_list(
    std::string_view text);

/// DSA_METRICS_QUANTILES from the environment; the default p50/p90/p99
/// when unset/empty. Set-but-invalid throws std::runtime_error naming the
/// variable and value, like every other DSA_* knob.
[[nodiscard]] std::vector<QuantileSpec> quantiles_from_environment();

/// The process-wide export list (defaults to p50/p90/p99). Readers get a
/// copy; set_export_quantiles replaces the list (empty input restores the
/// default). Configured once at process start (dsa_cli main, bench
/// MetricsScope) before writers run; the accessor itself is mutex-guarded.
[[nodiscard]] std::vector<QuantileSpec> export_quantiles();
void set_export_quantiles(std::vector<QuantileSpec> specs);

// ---------------------------------------------------------------------------
// Shared quantile core.

/// Position of the q-th quantile in a cumulative walk over `buckets`:
/// the covering bucket's index plus the fraction of that bucket's mass
/// below the target rank (for interpolation). `total` must be the sum of
/// `buckets`. Skips empty buckets exactly like the historical
/// HistogramValue::quantile walk; q is clamped to [0, 1]. Returns
/// {buckets.size(), 0.0} when total == 0.
struct BucketPosition {
  std::size_t index = 0;
  double fraction = 0.0;
};
[[nodiscard]] BucketPosition quantile_bucket(
    std::span<const std::uint64_t> buckets, std::uint64_t total, double q);

// ---------------------------------------------------------------------------
// Sketch handles + snapshots.

/// Value mapping of a quantile sketch, fixed at registration.
struct SketchOptions {
  double relative_error = 0.01;  // alpha: quantile relative-error bound
  double min_value = 1e-6;  // |v| below this lands in the zero bucket
  double max_value = 1e9;   // |v| above this clamps into the edge bucket
  bool operator==(const SketchOptions&) const = default;
};

/// Streaming quantile sketch handle. insert() is a relaxed fetch_add on
/// the calling thread's shard; no-op when default-constructed or when
/// observability is disabled.
class QuantileSketch {
 public:
  QuantileSketch() = default;
  void insert(double value) const noexcept;

 private:
  friend class SketchRegistry;
  QuantileSketch(SketchRegistry* registry, std::size_t id)
      : registry_(registry), id_(id) {}
  SketchRegistry* registry_ = nullptr;
  std::size_t id_ = 0;
};

/// Streaming moments handle (count/min/max/mean/variance feeds).
class MomentsAccumulator {
 public:
  MomentsAccumulator() = default;
  void insert(double value) const noexcept;

 private:
  friend class SketchRegistry;
  MomentsAccumulator(SketchRegistry* registry, std::size_t id)
      : registry_(registry), id_(id) {}
  SketchRegistry* registry_ = nullptr;
  std::size_t id_ = 0;
};

/// Merged point-in-time view of one quantile sketch. Buckets are exact
/// integer counts, so merge() is associative/commutative bit-for-bit and
/// snapshots are identical however the stream was sharded.
struct SketchSnapshot {
  std::string name;
  SketchOptions options;
  std::uint64_t zero_count = 0;        // |v| < min_value (including 0)
  std::vector<std::uint64_t> negative;  // magnitude buckets, low index = small
  std::vector<std::uint64_t> positive;

  [[nodiscard]] std::uint64_t count() const noexcept;

  /// Quantile estimate over the full signed stream: negative mass (largest
  /// magnitude first), then zeros (reported as 0.0), then positive mass.
  /// Bucket representatives guarantee relative error <= alpha for values
  /// inside [min_value, max_value]. Returns 0 for an empty sketch.
  [[nodiscard]] double quantile(double q) const;

  /// Exact merge (elementwise integer adds). Throws std::invalid_argument
  /// when the options differ — sketches only merge within one mapping.
  void merge(const SketchSnapshot& other);

  /// One-line JSON object with sparse bucket maps; from_json inverts it
  /// exactly (counts are integers, options round-trip via exact_number).
  [[nodiscard]] std::string to_json() const;
  [[nodiscard]] static SketchSnapshot from_json(std::string_view text);

  bool operator==(const SketchSnapshot&) const = default;
};

/// Merged point-in-time view of one moments accumulator.
struct MomentsSnapshot {
  std::string name;
  std::uint64_t count = 0;
  double min = 0.0;  // meaningless when count == 0
  double max = 0.0;
  double sum = 0.0;
  double sum_squares = 0.0;

  [[nodiscard]] double mean() const noexcept;
  /// Population variance from (sum, sum_squares); clamped at 0 so float
  /// cancellation never reports a negative spread.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;

  void merge(const MomentsSnapshot& other);
};

/// Snapshot of every registered summary, in registration order.
struct SketchRegistrySnapshot {
  std::vector<SketchSnapshot> sketches;
  std::vector<MomentsSnapshot> moments;
};

/// The sketch registry. Most code uses the process-wide global();
/// independent instances exist for tests. Same sharding discipline as
/// obs::Registry: shards are created under the mutex, owned by the
/// registry, and survive thread exit.
class SketchRegistry {
 public:
  SketchRegistry();
  ~SketchRegistry();
  SketchRegistry(const SketchRegistry&) = delete;
  SketchRegistry& operator=(const SketchRegistry&) = delete;

  static SketchRegistry& global();

  /// Registers (or finds) a sketch by name. Idempotent; re-registration
  /// with different options throws std::invalid_argument (the mapping is
  /// part of the sketch's identity). Options must satisfy
  /// 0 < relative_error < 1 and 0 < min_value < max_value.
  QuantileSketch sketch(std::string_view name, SketchOptions options = {});
  MomentsAccumulator moments(std::string_view name);

  /// Merged totals across all shards.
  [[nodiscard]] SketchRegistrySnapshot snapshot() const;

  /// Zeroes every summary (registrations stay). Only safe with no
  /// concurrent writers — a test/CLI-epilogue operation.
  void reset();

 private:
  friend class QuantileSketch;
  friend class MomentsAccumulator;

  struct Shard;
  struct Impl;
  Shard& local_shard();

  Impl* impl_;
  std::uint64_t instance_id_;
};

}  // namespace dsa::obs
